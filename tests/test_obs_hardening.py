"""Replay-path hardening (torn / interleaved / invalid JSONL) and
histogram quantile estimation, including their CLI surfaces."""

import json

import pytest

from repro.obs import Tracer
from repro.obs.metrics import Histogram, MetricsRegistry
from repro.obs.replay import read_trace, summarize_trace

pytestmark = pytest.mark.obs


def _span_line(span_id=1, name="work", t0=0.0, t1=1.0, parent=None):
    return json.dumps({"type": "span", "span_id": span_id,
                       "parent_id": parent, "name": name,
                       "t_start": t0, "t_end": t1, "attrs": {}})


class TestReadTraceHardening:
    def test_torn_final_line_salvages_the_rest(self, tmp_path):
        path = tmp_path / "t.jsonl"
        whole = _span_line(1)
        torn = _span_line(2)[:25]  # killed writer mid-record
        path.write_text(whole + "\n" + torn)
        trace = read_trace(path)
        assert len(trace.spans) == 1
        assert trace.malformed_lines == 1

    def test_interleaved_records_on_one_line_both_recovered(
            self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text(_span_line(1) + _span_line(2, name="other")
                        + "\n")
        trace = read_trace(path)
        assert [s["name"] for s in trace.spans] == ["work", "other"]
        assert trace.malformed_lines == 0

    def test_interleave_with_torn_tail_keeps_whole_records(
            self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text(_span_line(1) + _span_line(2)[:10] + "\n")
        trace = read_trace(path)
        assert len(trace.spans) == 1
        assert trace.malformed_lines == 1

    def test_non_numeric_and_bool_timestamps_rejected(self, tmp_path):
        path = tmp_path / "t.jsonl"
        bad_str = {"type": "span", "span_id": 1, "parent_id": None,
                   "name": "a", "t_start": "0", "t_end": 1.0}
        bad_bool = dict(bad_str, span_id=2, t_start=True, t_end=1.0)
        path.write_text(json.dumps(bad_str) + "\n"
                        + json.dumps(bad_bool) + "\n" + _span_line(3))
        trace = read_trace(path)
        assert len(trace.spans) == 1
        assert trace.malformed_lines == 2

    def test_broken_metrics_snapshot_does_not_lose_spans(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text(_span_line(1) + "\n"
                        + json.dumps({"type": "metrics",
                                      "metrics": "not-a-dict"}) + "\n")
        trace = read_trace(path)
        assert len(trace.spans) == 1
        assert trace.metrics is None
        assert trace.malformed_lines == 1

    def test_undecodable_bytes_do_not_raise(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_bytes(b"\xff\xfe garbage\n"
                         + _span_line(1).encode() + b"\n")
        trace = read_trace(path)
        assert len(trace.spans) == 1
        assert trace.malformed_lines == 1

    def test_empty_file_summarizes_cleanly(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        trace = read_trace(path)
        assert trace.spans == []
        assert trace.malformed_lines == 0
        assert summarize_trace(trace) == "trace: 0 span(s)"

    def test_round_trip_still_parses_clean(self, tmp_path):
        tracer = Tracer()
        registry = MetricsRegistry()
        registry.histogram("powerlens_latency_seconds",
                           buckets=(0.1, 1.0)).observe(0.4)
        with tracer.span("root"):
            pass
        path = tmp_path / "clean.jsonl"
        tracer.export_jsonl(path, metrics=registry)
        trace = read_trace(path)
        assert trace.malformed_lines == 0
        assert len(trace.spans) == 1
        assert trace.metrics is not None


class TestHistogramQuantiles:
    def test_uniform_fill_interpolates_linearly(self):
        hist = Histogram("h", buckets=(1.0, 2.0, 3.0, 4.0))
        for i in range(4):
            hist.observe(i + 0.5)  # one per finite bucket
        assert hist.quantile(0.0) == 0.0
        assert hist.quantile(0.25) == pytest.approx(1.0)
        assert hist.quantile(0.5) == pytest.approx(2.0)
        assert hist.quantile(1.0) == pytest.approx(4.0)

    def test_monotone_in_q(self):
        hist = Histogram("h", buckets=(0.01, 0.1, 1.0, 10.0))
        for v in (0.005, 0.02, 0.02, 0.5, 2.0, 20.0):
            hist.observe(v)
        qs = [hist.quantile(q / 20) for q in range(21)]
        assert qs == sorted(qs)

    def test_inf_bucket_clamps_to_last_finite_bound(self):
        hist = Histogram("h", buckets=(1.0, 2.0))
        hist.observe(100.0)
        assert hist.quantile(0.99) == 2.0

    def test_empty_and_invalid_q(self):
        hist = Histogram("h", buckets=(1.0,))
        assert hist.quantile(0.5) == 0.0
        with pytest.raises(ValueError):
            hist.quantile(1.5)
        with pytest.raises(ValueError):
            hist.quantile(-0.1)

    def test_single_bucket_estimate_inside_bucket(self):
        hist = Histogram("h", buckets=(10.0,))
        for _ in range(10):
            hist.observe(3.0)
        assert 0.0 < hist.quantile(0.5) <= 10.0

    def test_summarize_trace_renders_quantiles(self, tmp_path):
        tracer = Tracer()
        registry = MetricsRegistry()
        hist = registry.histogram("powerlens_stall_seconds",
                                  buckets=(0.001, 0.01, 0.1))
        for _ in range(20):
            hist.observe(0.005)
        with tracer.span("run"):
            pass
        path = tmp_path / "t.jsonl"
        tracer.export_jsonl(path, metrics=registry)
        text = summarize_trace(read_trace(path))
        line = next(l for l in text.splitlines()
                    if "powerlens_stall_seconds" in l)
        assert "p50=" in line and "p90=" in line and "p99=" in line

    def test_empty_histogram_renders_without_quantiles(self, tmp_path):
        tracer = Tracer()
        registry = MetricsRegistry()
        registry.histogram("powerlens_unused_seconds")
        with tracer.span("run"):
            pass
        path = tmp_path / "t.jsonl"
        tracer.export_jsonl(path, metrics=registry)
        text = summarize_trace(read_trace(path))
        line = next(l for l in text.splitlines()
                    if "powerlens_unused_seconds" in l)
        assert "p50=" not in line


class TestTraceCommandHardening:
    def test_missing_file_exits_cleanly(self, capsys):
        from repro.cli import main
        assert main(["trace", "/definitely/not/here.jsonl"]) == 1
        err = capsys.readouterr().err
        assert "cannot read" in err

    def test_empty_file_prints_summary_and_exits_zero(
            self, tmp_path, capsys):
        from repro.cli import main
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert main(["trace", str(path)]) == 0
        assert "trace: 0 span(s)" in capsys.readouterr().out
