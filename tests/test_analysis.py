"""Analysis tooling tests: roofline, curves, ping-pong diagnostics."""

import numpy as np
import pytest

from repro.analysis import (
    analyze_trace,
    level_curve,
    render_curve,
    roofline_report,
)
from repro.governors import OndemandGovernor, StaticGovernor
from repro.hw import InferenceJob, InferenceSimulator
from repro.models import build_model


@pytest.fixture(scope="module")
def vgg19():
    return build_model("vgg19")


class TestRoofline:
    def test_report_covers_all_ops(self, tx2, vgg19):
        report = roofline_report(tx2, vgg19, batch_size=16)
        assert len(report.ops) == len(vgg19.compute_nodes())
        assert report.total_time > 0

    def test_memory_bound_share_meaningful(self, tx2, vgg19):
        """At the calibrated TX2 top clock, most of vgg19's runtime is
        memory-limited — the premise of the whole DVFS opportunity."""
        report = roofline_report(tx2, vgg19, batch_size=16)
        assert report.memory_bound_time_share() > 0.5

    def test_low_level_flips_to_compute_bound(self, tx2, vgg19):
        top = roofline_report(tx2, vgg19, batch_size=16)
        bottom = roofline_report(tx2, vgg19, batch_size=16, ref_level=0)
        assert bottom.memory_bound_time_share() < \
            top.memory_bound_time_share()

    def test_crossover_fraction_clamped(self, tx2, vgg19):
        report = roofline_report(tx2, vgg19)
        for op in report.ops:
            assert 0.0 <= op.crossover_fraction(tx2) <= 2.0

    def test_category_shares_sum_to_one(self, tx2, vgg19):
        shares = roofline_report(tx2, vgg19).time_share_by_category()
        assert sum(shares.values()) == pytest.approx(1.0)

    def test_format_table(self, tx2, vgg19):
        text = roofline_report(tx2, vgg19).format_table(top_n=5)
        assert "memory-bound time share" in text
        assert vgg19.name in text


class TestCurves:
    def test_curve_shapes(self, tx2, vgg19):
        curve = level_curve(tx2, vgg19, batch_size=16)
        assert curve.freqs_hz.shape == (tx2.n_levels,)
        assert np.all(curve.energies_j > 0)
        assert np.all(np.diff(curve.times_s) <= 1e-12)

    def test_interior_optimum_exists(self, tx2, vgg19):
        """The EE curve must peak strictly inside the ladder — the
        paper's core empirical claim."""
        curve = level_curve(tx2, vgg19, batch_size=16)
        opt = curve.optimal_level()
        assert 0 < opt < tx2.max_level
        assert curve.headroom() > 0.2

    def test_slack_constrains_optimum(self, tx2, vgg19):
        curve = level_curve(tx2, vgg19, batch_size=16)
        free = curve.optimal_level()
        constrained = curve.optimal_level(latency_slack=0.05)
        assert constrained >= free

    def test_block_curve(self, tx2, vgg19):
        n = len(vgg19.compute_nodes())
        head = level_curve(tx2, vgg19, batch_size=16,
                           op_indices=range(n - 8, n))
        trunk = level_curve(tx2, vgg19, batch_size=16,
                            op_indices=range(n - 8))
        # The fc head is far more memory-bound: its optimum sits lower.
        assert head.optimal_level() <= trunk.optimal_level()

    def test_render_metrics(self, tx2, vgg19):
        curve = level_curve(tx2, vgg19)
        for metric in ("ee", "energy", "time", "power"):
            text = render_curve(curve, metric)
            assert "MHz" in text
        assert "optimum" in render_curve(curve, "ee")
        with pytest.raises(ValueError):
            render_curve(curve, "bogus")


class TestPingPong:
    def _trace(self, tx2, governor, graph):
        sim = InferenceSimulator(tx2, sample_period=0.01)
        job = InferenceJob(graph=graph, batch_size=16, n_batches=3,
                           cpu_work_per_image=2e8)
        return sim.run([job], governor)

    def test_ondemand_shows_lag(self, tx2):
        graph = build_model("resnet34")
        run = self._trace(tx2, OndemandGovernor(), graph)
        report = analyze_trace(run.trace, tx2.n_levels,
                               run.switch_count, run.reversal_count)
        assert report.switch_count > 0
        assert report.total_lag_s > 0
        assert len(report.lag_events) >= 1
        assert "lag" in report.format_table()

    def test_static_has_no_lag_or_reversals(self, tx2):
        graph = build_model("resnet18")
        run = self._trace(tx2, StaticGovernor(), graph)
        report = analyze_trace(run.trace, tx2.n_levels,
                               run.switch_count, run.reversal_count)
        assert report.reversal_count == 0
        assert report.total_lag_s == 0.0
        assert sum(report.level_residency) == pytest.approx(1.0)
