"""Experiment result export tests."""

import csv
import json

import pytest

from repro.core.overhead import OverheadReport
from repro.experiments.export import (
    accuracy_records,
    figure5_records,
    table1_records,
    table2_records,
    table3_records,
    to_records,
    write_csv,
    write_json,
)
from repro.experiments.figure5 import Figure5Result, MethodOutcome
from repro.experiments.table1 import Table1Result, Table1Row
from repro.experiments.table2 import Table2Result, Table2Row
from repro.experiments.table3 import Table3Result


@pytest.fixture()
def table1():
    return Table1Result(platform="tx2", rows=[
        Table1Row(model="alexnet", blocks=2, ee_powerlens=1.5,
                  ee_by_method={"bim": 1.0, "fpg_g": 1.2,
                                "fpg_cg": 1.3}),
    ])


def test_table1_records(table1):
    records = table1_records(table1)
    assert len(records) == 3
    bim = next(r for r in records if r["baseline"] == "bim")
    assert bim["gain"] == pytest.approx(0.5)
    assert bim["blocks"] == 2


def test_table2_records():
    result = Table2Result(platform="agx", rows=[
        Table2Row(model="vgg19", loss_pr=-0.4, loss_pn=-0.1)])
    records = table2_records(result)
    assert records[0]["loss_pr"] == -0.4


def test_table3_records():
    result = Table3Result(platform="tx2", report=OverheadReport(
        training=[("decision model", 100.0)],
        workflow=[("clustering", 2.0)],
        dvfs_switch_overhead_s=0.05))
    records = table3_records(result)
    sections = {r["section"] for r in records}
    assert sections == {"training", "workflow", "runtime"}


def test_figure5_records():
    result = Figure5Result(platform="tx2", n_tasks=5, images=100,
                           outcomes={
                               "bim": MethodOutcome("bim", 10.0, 2.0, 10.0),
                           })
    records = figure5_records(result)
    assert records[0]["energy_j"] == 10.0
    assert records[0]["images"] == 100


def test_dispatch_unknown_type():
    with pytest.raises(TypeError):
        to_records(object())


def test_write_json_roundtrip(tmp_path, table1):
    path = tmp_path / "t1.json"
    write_json(table1, path)
    loaded = json.loads(path.read_text())
    assert len(loaded) == 3
    assert loaded[0]["model"] == "alexnet"


def test_write_csv(tmp_path, table1):
    path = tmp_path / "t1.csv"
    write_csv(table1, path)
    with open(path) as fh:
        rows = list(csv.DictReader(fh))
    assert len(rows) == 3
    assert rows[0]["platform"] == "tx2"
