"""Trainer / data utility / metric tests."""

import numpy as np
import pytest

from repro.nn import (
    Sequential,
    StandardScaler,
    Trainer,
    TwoBranchMLP,
    accuracy,
    confusion_matrix,
    iterate_minibatches,
    split_indices,
    within_k_accuracy,
)
from repro.nn.metrics import mean_level_error


class TestScaler:
    def test_transform_standardizes(self):
        rng = np.random.default_rng(0)
        x = rng.normal(3.0, 5.0, size=(200, 4))
        s = StandardScaler()
        z = s.fit_transform(x)
        assert np.allclose(z.mean(axis=0), 0.0, atol=1e-9)
        assert np.allclose(z.std(axis=0), 1.0, atol=1e-9)

    def test_constant_column_safe(self):
        x = np.hstack([np.ones((10, 1)),
                       np.arange(10.0).reshape(-1, 1)])
        z = StandardScaler().fit_transform(x)
        assert np.all(np.isfinite(z))
        assert np.allclose(z[:, 0], 0.0)

    def test_inverse_transform_roundtrip(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(50, 3))
        s = StandardScaler().fit(x)
        assert np.allclose(s.inverse_transform(s.transform(x)), x)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            StandardScaler().transform(np.zeros((2, 2)))
        with pytest.raises(ValueError):
            StandardScaler().fit(np.zeros(3))


class TestSplits:
    def test_fractions_validated(self):
        with pytest.raises(ValueError):
            split_indices(10, fractions=(0.5, 0.2))

    def test_split_partitions(self):
        tr, va, te = split_indices(100, seed=0)
        all_idx = np.concatenate([tr, va, te])
        assert sorted(all_idx) == list(range(100))
        assert len(tr) == 80 and len(va) == 10 and len(te) == 10

    def test_deterministic(self):
        a = split_indices(50, seed=3)
        b = split_indices(50, seed=3)
        for x, y in zip(a, b):
            assert np.array_equal(x, y)

    def test_minibatches_cover_everything(self):
        seen = np.concatenate(list(iterate_minibatches(23, 5, seed=1)))
        assert sorted(seen) == list(range(23))

    def test_minibatch_validation(self):
        with pytest.raises(ValueError):
            list(iterate_minibatches(10, 0))


class TestMetrics:
    def test_accuracy(self):
        assert accuracy(np.array([1, 2, 3]), np.array([1, 2, 0])) == \
            pytest.approx(2 / 3)

    def test_accuracy_shape_mismatch(self):
        with pytest.raises(ValueError):
            accuracy(np.array([1]), np.array([1, 2]))

    def test_within_k(self):
        pred = np.array([3, 5, 9])
        target = np.array([4, 5, 2])
        assert within_k_accuracy(pred, target, 1) == pytest.approx(2 / 3)
        assert within_k_accuracy(pred, target, 7) == 1.0

    def test_confusion_matrix(self):
        cm = confusion_matrix(np.array([0, 1, 1]), np.array([0, 0, 1]), 2)
        assert cm[0, 0] == 1 and cm[0, 1] == 1 and cm[1, 1] == 1

    def test_mean_level_error(self):
        assert mean_level_error(np.array([1, 5]),
                                np.array([2, 3])) == pytest.approx(1.5)

    def test_empty_inputs(self):
        empty = np.array([], dtype=int)
        assert accuracy(empty, empty) == 0.0
        assert within_k_accuracy(empty, empty) == 0.0
        assert mean_level_error(empty, empty) == 0.0


class TestTrainer:
    def _separable(self, n=600, seed=0):
        rng = np.random.default_rng(seed)
        x = rng.normal(size=(n, 4))
        y = (x[:, 0] + 0.5 * x[:, 1] > 0).astype(int)
        return x, y

    def test_learns_separable_problem(self):
        x, y = self._separable()
        model = Sequential.mlp([4, 16, 2], seed=0)
        tr, va, te = split_indices(len(y), seed=0)
        trainer = Trainer(model, lr=5e-3, max_epochs=60, patience=10)
        trainer.fit((x[tr],), y[tr], (x[va],), y[va])
        _, acc = trainer.evaluate((x[te],), y[te])
        assert acc > 0.9

    def test_early_stopping_restores_best(self):
        x, y = self._separable(300)
        model = Sequential.mlp([4, 8, 2], seed=1)
        trainer = Trainer(model, lr=5e-3, max_epochs=100, patience=5)
        hist = trainer.fit((x[:200],), y[:200], (x[200:],), y[200:])
        assert hist.best_epoch >= 0
        assert hist.epochs <= 100
        assert hist.wall_time_s > 0

    def test_history_recorded(self):
        x, y = self._separable(200)
        model = Sequential.mlp([4, 8, 2], seed=2)
        trainer = Trainer(model, lr=1e-3, max_epochs=5, patience=50)
        hist = trainer.fit((x[:150],), y[:150], (x[150:],), y[150:])
        assert len(hist.train_loss) == len(hist.val_loss)
        assert len(hist.val_accuracy) == len(hist.val_loss)

    def test_loss_decreases(self):
        x, y = self._separable(400)
        model = Sequential.mlp([4, 16, 2], seed=3)
        trainer = Trainer(model, lr=5e-3, max_epochs=30, patience=30)
        hist = trainer.fit((x,), y)
        assert hist.train_loss[-1] < hist.train_loss[0]

    def test_two_branch_training(self):
        rng = np.random.default_rng(4)
        xs = rng.normal(size=(500, 3))
        xt = rng.normal(size=(500, 2))
        y = ((xs[:, 0] > 0) ^ (xt[:, 0] > 0)).astype(int)
        model = TwoBranchMLP(3, 2, 2, seed=5)
        tr, va, te = split_indices(500, seed=1)
        trainer = Trainer(model, lr=5e-3, max_epochs=80, patience=15)
        trainer.fit((xs[tr], xt[tr]), y[tr], (xs[va], xt[va]), y[va])
        _, acc = trainer.evaluate((xs[te], xt[te]), y[te])
        assert acc > 0.8

    def test_predict_returns_classes(self):
        x, y = self._separable(100)
        model = Sequential.mlp([4, 8, 3], seed=6)
        trainer = Trainer(model, max_epochs=2)
        trainer.fit((x,), y)
        pred = trainer.predict((x,))
        assert pred.shape == y.shape
        assert set(pred) <= {0, 1, 2}
