"""End-to-end PowerLens pipeline tests (uses the session-scoped fitted
lens from conftest)."""

import pytest

from repro.core import PowerLens, PowerLensConfig
from repro.governors.preset import PresetGovernor
from repro.hw import InferenceJob, InferenceSimulator
from repro.models import build_model


class TestFitting:
    def test_unfitted_analyze_raises(self, tx2, small_cnn):
        lens = PowerLens(tx2)
        with pytest.raises(RuntimeError, match="not fitted"):
            lens.analyze(small_cnn)

    def test_training_summary(self, fitted_lens):
        s = fitted_lens.training_summary
        assert s is not None
        assert s.generation.n_networks == 25
        assert s.generation.n_blocks >= 25
        assert 0 <= s.decision_report.test_accuracy <= 1
        text = s.format()
        assert "decision model" in text


class TestAnalyze:
    def test_plan_covers_graph(self, fitted_lens, small_cnn):
        plan = fitted_lens.analyze(small_cnn)
        n = len(small_cnn.compute_nodes())
        covered = sorted(i for b in plan.view.blocks
                         for i in b.op_indices)
        assert covered == list(range(n))
        assert len(plan.levels) == plan.n_blocks
        assert plan.plan.steps[0].op_index == 0

    def test_levels_within_ladder(self, fitted_lens, small_cnn, tx2):
        plan = fitted_lens.analyze(small_cnn)
        assert all(0 <= lvl <= tx2.max_level for lvl in plan.levels)

    def test_summary_text(self, fitted_lens, small_cnn):
        text = fitted_lens.analyze(small_cnn).summary()
        assert "block 0 -> level" in text

    def test_oracle_plan_needs_no_models(self, tx2, small_cnn):
        lens = PowerLens(tx2, PowerLensConfig(n_networks=5))
        plan = lens.oracle_plan(small_cnn)
        assert plan.n_blocks >= 1

    def test_overhead_report_populated(self, fitted_lens, small_cnn):
        fitted_lens.analyze(small_cnn)
        report = fitted_lens.overhead_report()
        stages = [name for name, _ in report.workflow]
        assert "feature extraction" in stages
        assert "clustering" in stages
        text = report.format_table("tx2")
        assert "Model Training" in text


class TestGovernorIntegration:
    def test_governor_carries_plans(self, fitted_lens, small_cnn):
        gov = fitted_lens.governor([small_cnn])
        assert isinstance(gov, PresetGovernor)
        assert gov.plan_for(small_cnn.name) is not None
        assert gov.name == "powerlens"

    def test_oracle_governor_name(self, fitted_lens, small_cnn):
        gov = fitted_lens.governor([small_cnn], oracle=True)
        assert gov.name == "powerlens-oracle"

    def test_powerlens_beats_max_frequency(self, fitted_lens, tx2):
        """Headline claim: the fitted framework improves EE over pinned
        maximum frequency on an unseen real network."""
        from repro.governors import StaticGovernor
        graph = build_model("resnet18")
        gov = fitted_lens.governor([graph], oracle=True)
        job = InferenceJob(graph=graph, batch_size=16, n_batches=3,
                           cpu_work_per_image=5e7)
        ee_pl = InferenceSimulator(tx2, keep_trace=False).run(
            [job], gov).report.energy_efficiency
        ee_max = InferenceSimulator(tx2, keep_trace=False).run(
            [job], StaticGovernor()).report.energy_efficiency
        assert ee_pl > ee_max * 1.2
