"""Request-lifecycle tracing: byte-identity, sampling, decomposition.

The tentpole invariant pinned here: a :class:`RequestTracer` (and a
:class:`BurnRateMonitor`) riding the scheduler is **strictly
observe-only** — the canonical event log, the SLO report and the
ledger totals are byte-identical with tracing on or off, across
governors × policies × fault profiles × recovery configs ×
``n_jobs``.  Also pinned:

* **sampling determinism** — the head-sampled id set is a pure
  function of ``(seed, request_id)``, so replays sample identically;
* **tail retention** — expired / unserviceable / queue_full /
  SLO-violating / anomaly-flagged requests are kept at 100% even with
  ``head_rate=0``;
* **exact decomposition** — ``queue_s + batch_s + service_s`` equals
  the end-to-end latency within 1e-9 for every outcome;
* **replayable export** — ``export_jsonl`` files parse with
  :func:`repro.obs.replay.read_trace` with zero malformed lines.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.hw.faults import FaultProfile
from repro.obs.burnrate import BurnRateConfig, BurnRateMonitor
from repro.obs.replay import read_trace, span_tree
from repro.serving import (
    DeviceConfig,
    Fleet,
    FleetScheduler,
    RecoveryConfig,
    RequestTracer,
    SamplingConfig,
    SchedulerConfig,
    head_sample_keep,
    make_trace,
)
from tests.conftest import build_small_cnn

pytestmark = pytest.mark.serving

MODEL = "small_cnn"
STORM = dict(telemetry_noise_std=0.8, switch_drop_rate=0.2)

_SEEDS = st.integers(min_value=0, max_value=2**32 - 1)
_POLICIES = st.sampled_from(["fifo", "slo", "energy"])
_GOVERNORS = st.sampled_from(
    ["powerlens", "powerlens-adaptive", "ondemand", "performance"])


def _run(seed: int, policy: str = "fifo", governor: str = "powerlens",
         rate: float = 30.0, duration: float = 0.5,
         slo: float = math.inf, faults: FaultProfile = None,
         recovery: RecoveryConfig = None, n_jobs: int = 1,
         queue_capacity: int = 64, sampling: SamplingConfig = None,
         traced: bool = True, burn: BurnRateConfig = None):
    fleet = Fleet.build([DeviceConfig("tx2-0", "tx2"),
                         DeviceConfig("agx-1", "agx")],
                        governor=governor, fleet_seed=seed,
                        faults=faults)
    fleet.add_graph(build_small_cnn(MODEL))
    trace = make_trace("poisson", rate_rps=rate, duration_s=duration,
                       models=[MODEL], seed=seed, slo_latency_s=slo)
    tracer = RequestTracer(sampling) if traced else None
    monitor = (BurnRateMonitor(burn or BurnRateConfig(
        fast_window_s=0.1, slow_window_s=0.4)) if traced else None)
    scheduler = FleetScheduler(
        fleet,
        SchedulerConfig(policy=policy, queue_capacity=queue_capacity,
                        recovery=recovery),
        request_tracer=tracer, burn_monitor=monitor)
    return scheduler.run(trace, n_jobs=n_jobs)


# ----------------------------------------------------------------------
# byte-identity: tracing never perturbs the run
# ----------------------------------------------------------------------
class TestByteIdentity:
    @settings(max_examples=10, deadline=None)
    @given(seed=_SEEDS, policy=_POLICIES, governor=_GOVERNORS)
    def test_tracing_invisible_across_governors_and_policies(
            self, seed, policy, governor):
        plain = _run(seed, policy=policy, governor=governor,
                     traced=False)
        traced = _run(seed, policy=policy, governor=governor)
        assert plain.event_log() == traced.event_log()
        assert plain.report.to_dict() == traced.report.to_dict()
        assert (plain.report.ledger_energy_j
                == traced.report.ledger_energy_j)

    @settings(max_examples=6, deadline=None)
    @given(seed=_SEEDS,
           recovery_on=st.booleans(),
           n_jobs=st.sampled_from([1, 4]))
    def test_tracing_invisible_under_faults_and_recovery(
            self, seed, recovery_on, n_jobs):
        faults = FaultProfile(seed=seed, **STORM)
        recovery = (RecoveryConfig(cooldown_s=0.05, max_cooldown_s=0.4)
                    if recovery_on else None)
        kwargs = dict(policy="slo", slo=0.5, duration=1.0,
                      recovery=recovery, n_jobs=n_jobs)
        plain = _run(seed, faults=FaultProfile(seed=seed, **STORM),
                     traced=False, **kwargs)
        traced = _run(seed, faults=faults, **kwargs)
        assert plain.event_log() == traced.event_log()
        assert plain.report.to_dict() == traced.report.to_dict()
        assert (plain.report.ledger_energy_j
                == traced.report.ledger_energy_j)

    def test_sampling_rate_never_changes_outputs(self):
        full = _run(5, sampling=SamplingConfig(head_rate=1.0))
        none = _run(5, sampling=SamplingConfig(head_rate=0.0,
                                               keep_tail=False))
        assert full.event_log() == none.event_log()
        assert full.report.to_dict() == none.report.to_dict()


# ----------------------------------------------------------------------
# sampling: deterministic head, 100% anomalous tail
# ----------------------------------------------------------------------
class TestSampling:
    @settings(max_examples=20, deadline=None)
    @given(seed=_SEEDS, rate=st.floats(min_value=0.0, max_value=1.0))
    def test_head_sampling_is_a_pure_function(self, seed, rate):
        first = [head_sample_keep(seed, rid, rate)
                 for rid in range(200)]
        second = [head_sample_keep(seed, rid, rate)
                  for rid in range(200)]
        assert first == second

    def test_head_rate_roughly_honoured(self):
        kept = sum(head_sample_keep(7, rid, 0.25)
                   for rid in range(4000))
        assert 0.18 < kept / 4000 < 0.32

    def test_same_seed_same_sampled_set(self):
        cfg = SamplingConfig(head_rate=0.3, seed=42)
        a = _run(9, rate=80.0, sampling=cfg)
        b = _run(9, rate=80.0, sampling=cfg)
        ids_a = {t.request_id for t in a.request_tracer.traces()}
        ids_b = {t.request_id for t in b.request_tracer.traces()}
        assert ids_a == ids_b
        assert a.request_tracer.sampled_count < a.report.arrived

    def test_different_seed_different_sampled_set(self):
        a = _run(9, rate=80.0,
                 sampling=SamplingConfig(head_rate=0.3, seed=1))
        b = _run(9, rate=80.0,
                 sampling=SamplingConfig(head_rate=0.3, seed=2))
        ids_a = {t.request_id for t in a.request_tracer.traces()}
        ids_b = {t.request_id for t in b.request_tracer.traces()}
        assert ids_a != ids_b

    def test_tail_keeps_every_anomalous_request(self):
        # Tight SLO + tiny queue: expirations, violations and
        # queue_full rejections abound; head_rate=0 keeps only them.
        result = _run(3, rate=200.0, duration=0.5, slo=0.05,
                      queue_capacity=4,
                      sampling=SamplingConfig(head_rate=0.0))
        tracer = result.request_tracer
        report = result.report
        anomalous = (report.dropped_expired
                     + report.dropped_unserviceable
                     + report.dropped_queue_full
                     + report.slo_violations)
        assert anomalous > 0
        traces = tracer.traces()
        assert len(traces) == anomalous
        assert all(t.anomalous and not t.sampled_head for t in traces)
        assert tracer.sampled_tail_count == anomalous
        # Tail retention is 100%: every expired/violating id present.
        outcomes = {t.outcome for t in traces}
        assert "expired" in outcomes or "queue_full" in outcomes

    def test_keep_tail_false_drops_the_tail(self):
        result = _run(3, rate=200.0, duration=0.5, slo=0.05,
                      queue_capacity=4,
                      sampling=SamplingConfig(head_rate=0.0,
                                              keep_tail=False))
        assert result.request_tracer.sampled_count == 0

    def test_invalid_head_rate_rejected(self):
        with pytest.raises(ValueError):
            SamplingConfig(head_rate=1.5)
        with pytest.raises(ValueError):
            SamplingConfig(head_rate=-0.1)

    def test_sampling_metrics_merged_into_fleet_registry(self):
        result = _run(5)
        seen = result.metrics.counter(
            "powerlens_request_trace_seen_total").value
        sampled = result.metrics.counter(
            "powerlens_request_trace_sampled_total").value
        assert seen == result.report.arrived
        assert sampled == result.request_tracer.sampled_count


# ----------------------------------------------------------------------
# decomposition: queue + batch + service == latency, exactly
# ----------------------------------------------------------------------
class TestDecomposition:
    @settings(max_examples=8, deadline=None)
    @given(seed=_SEEDS, policy=_POLICIES,
           slo=st.sampled_from([math.inf, 0.5, 0.05]))
    def test_components_sum_to_latency(self, seed, policy, slo):
        result = _run(seed, policy=policy, slo=slo, rate=60.0,
                      queue_capacity=8)
        traces = result.request_tracer.traces()
        assert traces
        for tr in traces:
            total = tr.queue_s + tr.batch_s + tr.service_s
            assert total == pytest.approx(tr.latency_s, abs=1e-9)
            assert tr.queue_s >= 0 and tr.batch_s >= 0
            assert tr.service_s >= 0

    def test_completed_trace_attributes(self):
        result = _run(5, policy="slo")
        completed = [t for t in result.request_tracer.traces()
                     if t.completed]
        assert completed
        by_id = {o.request_id: o for o in result.outcomes}
        for tr in completed:
            outcome = by_id[tr.request_id]
            assert tr.device == outcome.device
            assert tr.energy_j == outcome.energy_j
            assert tr.dispatch_seq >= 0
            assert tr.plan_fingerprint
            assert tr.recovery_state
            assert tr.request_id in tr.batch_request_ids
            assert tr.batch_n_requests == len(tr.batch_request_ids)
            assert tr.ledger_energy_j > 0.0

    def test_ledger_shares_sum_to_fleet_total(self):
        result = _run(5)
        traces = result.request_tracer.traces()
        assert len(traces) == result.report.arrived  # head_rate=1
        share_sum = math.fsum(t.ledger_energy_j for t in traces
                              if t.completed)
        assert share_sum == pytest.approx(
            result.report.ledger_energy_j, rel=1e-9)

    def test_drop_traces_are_queue_only(self):
        result = _run(3, rate=200.0, duration=0.5, slo=0.05,
                      queue_capacity=4)
        drops = [t for t in result.request_tracer.traces()
                 if not t.completed]
        assert drops
        for tr in drops:
            assert tr.batch_s == 0.0 and tr.service_s == 0.0
            assert not tr.slo_ok
            if tr.outcome == "queue_full":
                assert tr.latency_s == 0.0


# ----------------------------------------------------------------------
# export: powerlens-trace-compatible JSONL
# ----------------------------------------------------------------------
class TestExport:
    def test_export_readable_by_read_trace(self, tmp_path):
        result = _run(5, policy="slo")
        path = result.request_tracer.export_jsonl(
            tmp_path / "req.jsonl")
        trace = read_trace(path)
        assert trace.malformed_lines == 0
        assert len(trace.spans) > 0
        roots = [n for n in span_tree(trace.spans)
                 if n.name == "request"]
        completed_roots = [
            n for n in roots
            if n.record["attrs"].get("outcome") == "completed"]
        assert completed_roots
        for node in completed_roots:
            names = [c.name for c in node.children]
            assert names == ["queued", "batched", "dispatched"]

    def test_export_is_byte_stable(self, tmp_path):
        a = _run(5).request_tracer.export_jsonl(tmp_path / "a.jsonl")
        b = _run(5).request_tracer.export_jsonl(tmp_path / "b.jsonl")
        assert a.read_bytes() == b.read_bytes()

    def test_export_appends_burn_spans(self, tmp_path):
        result = _run(3, rate=200.0, duration=0.5, slo=0.02,
                      burn=BurnRateConfig(objective=0.99,
                                          fast_window_s=0.05,
                                          slow_window_s=0.1,
                                          min_events=3))
        monitor = result.burn_monitor
        assert monitor.alert_count > 0
        path = result.request_tracer.export_jsonl(
            tmp_path / "req.jsonl", burn=monitor)
        trace = read_trace(path)
        burn_spans = [s for s in trace.spans
                      if s["name"] == "slo_burn"]
        assert len(burn_spans) == monitor.alert_count
        for span in burn_spans:
            assert span["attrs"]["peak_fast_burn"] >= 0
