"""PowerView / PowerBlock IR tests."""

import numpy as np
import pytest

from repro.core import PowerView
from repro.core.features import GlobalFeatureExtractor


def _view(graph, splits):
    n = len(graph.compute_nodes())
    bounds = [0, *splits, n]
    blocks = [list(range(a, b)) for a, b in zip(bounds, bounds[1:])]
    return PowerView.from_blocks(graph, blocks, eps=0.5, min_pts=2)


class TestConstruction:
    def test_from_blocks(self, small_cnn):
        view = _view(small_cnn, [4])
        assert view.n_blocks == 2
        assert view.blocks[0].start == 0
        assert view.blocks[1].start == 4
        assert view.eps == 0.5

    def test_block_properties(self, small_cnn):
        view = _view(small_cnn, [4])
        b0 = view.blocks[0]
        assert len(b0) == 4
        assert b0.end == 4
        assert b0.features.vector.shape[0] > 0

    def test_non_contiguous_rejected(self, small_cnn):
        with pytest.raises(ValueError, match="not contiguous"):
            PowerView.from_blocks(small_cnn, [[0, 2], [1]])

    def test_gap_rejected(self, small_cnn):
        n = len(small_cnn.compute_nodes())
        with pytest.raises(ValueError, match="covers"):
            PowerView.from_blocks(small_cnn, [list(range(n - 1))])

    def test_overlap_rejected(self, small_cnn):
        n = len(small_cnn.compute_nodes())
        with pytest.raises(ValueError, match="covers"):
            PowerView.from_blocks(
                small_cnn, [list(range(0, 5)), list(range(4, n))])


class TestAccess:
    def test_block_of_op(self, small_cnn):
        view = _view(small_cnn, [4])
        assert view.block_of_op(0).index == 0
        assert view.block_of_op(3).index == 0
        assert view.block_of_op(4).index == 1
        with pytest.raises(IndexError):
            view.block_of_op(999)

    def test_boundaries_are_instrumentation_points(self, small_cnn):
        view = _view(small_cnn, [4, 8])
        assert view.boundaries() == [0, 4, 8]

    def test_feature_matrix_shape(self, small_cnn):
        view = _view(small_cnn, [4])
        ext = GlobalFeatureExtractor()
        m = view.feature_matrix()
        assert m.shape == (2, ext.structural_dim + ext.statistics_dim)
        assert np.all(np.isfinite(m))

    def test_summary_mentions_all_blocks(self, small_cnn):
        view = _view(small_cnn, [4])
        s = view.summary()
        assert "block 0" in s and "block 1" in s
        assert small_cnn.name in s

    def test_to_dot(self, small_cnn):
        dot = _view(small_cnn, [4]).to_dot()
        assert dot.startswith("digraph")
