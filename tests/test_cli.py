"""CLI parsing tests (execution of heavy commands is covered by the
experiment integration tests)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_table1_defaults(self):
        args = build_parser().parse_args(["table1"])
        assert args.platform == "tx2"
        assert args.runs == 10

    def test_platform_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table1", "--platform", "h100"])

    def test_figure1_model_arg(self):
        args = build_parser().parse_args(
            ["figure1", "--model", "vgg19", "--platform", "agx"])
        assert args.model == "vgg19"
        assert args.platform == "agx"

    def test_all_commands_parse(self):
        parser = build_parser()
        for cmd in ("table1", "table2", "table3", "figure1", "figure5",
                    "accuracy", "analyze", "models"):
            args = parser.parse_args([cmd])
            assert args.command == cmd


def test_models_command_lists_zoo(capsys):
    assert main(["models"]) == 0
    out = capsys.readouterr().out
    assert "resnet152" in out
    assert "vit_b_16" in out
