"""Regression tests for the paper's qualitative observations
(section 3.2.1), pinned against the model-free oracle pipeline so they
are independent of prediction-model training noise."""

import pytest

from repro.analysis import level_curve
from repro.core import PowerLens, PowerLensConfig
from repro.hw import jetson_agx_xavier, jetson_tx2
from repro.models import build_model


@pytest.fixture(scope="module")
def tx2_lens():
    return PowerLens(jetson_tx2(), PowerLensConfig())


@pytest.fixture(scope="module")
def agx_lens():
    return PowerLens(jetson_agx_xavier(), PowerLensConfig())


class TestObservation1SmallNetworks:
    """"Smaller networks ... lack a sufficient number of operators for
    clustering" — and gain least from DVFS headroom."""

    def test_small_nets_have_less_headroom(self):
        tx2 = jetson_tx2()
        small = level_curve(tx2, build_model("alexnet"), 16).headroom()
        large = level_curve(tx2, build_model("resnet152"), 16).headroom()
        assert small < large


class TestObservation2BlockStructure:
    def test_vgg_splits_trunk_from_head(self, tx2_lens):
        """The conv trunk and the memory-bound fc head are separate
        power blocks with far-apart target levels."""
        plan = tx2_lens.oracle_plan(build_model("vgg19"))
        assert plan.n_blocks >= 2
        assert plan.levels[0] - plan.levels[-1] >= 3

    def test_alexnet_head_gets_low_level(self, tx2_lens):
        plan = tx2_lens.oracle_plan(build_model("alexnet"))
        if plan.n_blocks >= 2:
            assert plan.levels[-1] < plan.levels[0]

    def test_mobilenet_prefers_low_levels(self, tx2_lens):
        """Depthwise-dominated networks are memory-bound: every block's
        target sits in the lower half of the ladder."""
        plan = tx2_lens.oracle_plan(build_model("mobilenet_v3"))
        n_levels = tx2_lens.platform.n_levels
        assert all(lvl <= n_levels // 2 for lvl in plan.levels)


class TestObservation3TransformerMerging:
    def test_vit_repeated_blocks_merge(self, tx2_lens):
        """Paper: 'PowerLens treats the connections of repeated
        transformer modules in the ViT model as a large power block.'"""
        for name in ("vit_base_16", "vit_base_32"):
            plan = tx2_lens.oracle_plan(build_model(name))
            # The 12 encoder layers never fragment into per-layer blocks.
            assert plan.n_blocks <= 4
            biggest = max(len(b) for b in plan.view.blocks)
            n_ops = len(plan.view.graph.compute_nodes())
            assert biggest >= n_ops // 2


class TestCrossPlatform:
    def test_agx_headroom_exceeds_tx2(self):
        """Table 1(b) >> Table 1(a): the AGX's steeper V/f curve leaves
        more on the table at max frequency."""
        graph = build_model("resnet152")
        h_tx2 = level_curve(jetson_tx2(), graph, 16).headroom()
        h_agx = level_curve(jetson_agx_xavier(), graph, 16).headroom()
        assert h_agx > h_tx2 * 1.3

    def test_every_paper_model_has_interior_optimum(self):
        """The premise of the whole paper, checked for the full suite on
        both platforms."""
        from repro.models import PAPER_MODELS
        for platform in (jetson_tx2(), jetson_agx_xavier()):
            for name in PAPER_MODELS:
                curve = level_curve(platform, build_model(name), 16)
                assert curve.optimal_level() < platform.max_level, name
                assert curve.headroom() > 0.1, name

    def test_oracle_plans_agree_across_platforms_in_shape(self, tx2_lens,
                                                          agx_lens):
        """Block boundaries come from the network's structure, so the
        two platforms should find similar granularity."""
        graph_tx2 = build_model("googlenet")
        graph_agx = build_model("googlenet")
        p1 = tx2_lens.oracle_plan(graph_tx2)
        p2 = agx_lens.oracle_plan(graph_agx)
        assert abs(p1.n_blocks - p2.n_blocks) <= 3
