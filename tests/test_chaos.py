"""Chaos suite: composed fault storms against the serving loop.

Every test here composes several fault modes at once — device drains
(telemetry noise tripping the anomaly budget), DVFS switch drops and
partial applies, telemetry sample loss, and thermal cap windows — then
asserts the two properties that must survive *any* storm:

* **accounting never breaks** — request conservation holds exactly and
  the per-dispatch energy ledgers reconcile to ≤ 1e-9 relative error,
  no matter which faults fired;
* **the loop always terminates** — no deadlock or livelock, including
  on empty and zero-rate arrival traces, with and without the recovery
  state machine re-admitting drained devices.

Select with ``-m chaos``; runs in tier 1.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.hw.faults import CapWindow, FaultProfile
from repro.serving import (
    ArrivalTrace,
    DeviceConfig,
    Fleet,
    FleetScheduler,
    RecoveryConfig,
    SchedulerConfig,
    make_trace,
)
from tests.conftest import build_small_cnn

pytestmark = pytest.mark.chaos

MODEL = "small_cnn"

LEDGER_TOL = 1e-9


@st.composite
def storms(draw):
    """A composed fault profile: drains + DVFS drops + telemetry noise
    + an optional thermal cap window, all at once."""
    windows = []
    for _ in range(draw(st.integers(min_value=0, max_value=2))):
        t0 = draw(st.floats(min_value=0.0, max_value=0.6))
        dur = draw(st.floats(min_value=0.05, max_value=0.5))
        windows.append(CapWindow(t_start=t0, t_end=t0 + dur,
                                 max_level=draw(st.integers(0, 2))))
    return FaultProfile(
        seed=draw(st.integers(min_value=0, max_value=2**32 - 1)),
        switch_drop_rate=draw(st.floats(min_value=0.0, max_value=0.4)),
        switch_partial_rate=draw(
            st.floats(min_value=0.0, max_value=0.2)),
        telemetry_drop_rate=draw(
            st.floats(min_value=0.0, max_value=0.3)),
        telemetry_noise_std=draw(
            st.floats(min_value=0.0, max_value=1.0)),
        cap_windows=tuple(windows),
    )


_RECOVERIES = st.sampled_from([
    None,
    RecoveryConfig(cooldown_s=0.05, max_cooldown_s=0.4),
    RecoveryConfig(cooldown_s=0.05, max_cooldown_s=0.2,
                   probation_jobs=1, max_attempts=2),
])


def _run(trace, faults=None, recovery=None,
         governor: str = "powerlens", seed: int = 0):
    fleet = Fleet.build([DeviceConfig("tx2-0", "tx2"),
                         DeviceConfig("agx-1", "agx")],
                        governor=governor, fleet_seed=seed,
                        faults=faults)
    fleet.add_graph(build_small_cnn(MODEL))
    scheduler = FleetScheduler(fleet, SchedulerConfig(
        policy="fifo", queue_capacity=128, recovery=recovery))
    return scheduler.run(trace)


def _trace(seed: int, rate: float = 30.0, duration: float = 1.0):
    return make_trace("poisson", rate_rps=rate, duration_s=duration,
                      models=[MODEL], seed=seed,
                      slo_latency_s=math.inf)


def _assert_invariants(result):
    report = result.report
    assert report.conserved
    assert report.arrived == report.admitted + report.dropped_queue_full
    assert report.admitted == (report.completed + report.dropped_expired
                               + report.dropped_unserviceable)
    assert report.energy_rel_err <= LEDGER_TOL
    for record in result.dispatches:
        assert record.ledger_ok
    # the event log is dense and time-ordered even mid-storm
    seqs = [e["seq"] for e in result.events]
    assert seqs == list(range(len(seqs)))
    times = [e["t"] for e in result.events]
    assert all(a <= b for a, b in zip(times, times[1:]))


@settings(max_examples=15, deadline=None)
@given(storm=storms(), recovery=_RECOVERIES,
       seed=st.integers(min_value=0, max_value=2**32 - 1))
def test_composed_storms_never_break_accounting(storm, recovery, seed):
    """Drains + switch drops + noise + cap windows, recovery on or
    off: conservation and ledger reconciliation always hold and the
    run always returns."""
    result = _run(_trace(seed), faults=storm, recovery=recovery,
                  seed=seed)
    _assert_invariants(result)


@settings(max_examples=8, deadline=None)
@given(storm=storms(), recovery=_RECOVERIES)
def test_adaptive_governor_survives_storms(storm, recovery):
    """The closed replanning loop adds no accounting leak under any
    composed storm."""
    result = _run(_trace(7, duration=0.6), faults=storm,
                  recovery=recovery, governor="powerlens-adaptive",
                  seed=7)
    _assert_invariants(result)


@pytest.mark.parametrize("recovery", [
    None, RecoveryConfig(cooldown_s=0.05, max_cooldown_s=0.2)])
@pytest.mark.parametrize("duration", [0.0, 2.0])
def test_empty_trace_terminates(recovery, duration):
    """A trace with no arrivals (empty, or zero-rate over a horizon)
    must terminate immediately with all-zero accounting — no probe
    loop may spin on an idle fleet."""
    trace = ArrivalTrace(kind="poisson", seed=0, requests=(),
                         duration_s=duration)
    result = _run(trace, faults=FaultProfile(seed=1, **{
        "telemetry_noise_std": 0.8, "switch_drop_rate": 0.2}),
        recovery=recovery)
    report = result.report
    assert report.arrived == 0
    assert report.completed == 0
    assert report.conserved
    assert result.events == []


@pytest.mark.parametrize("max_attempts", [1, 3])
def test_hostile_probes_cannot_livelock(max_attempts):
    """A storm harsh enough that probes keep failing: the attempt
    budget bounds the probe loop and the run still terminates with
    conservation intact."""
    storm = FaultProfile(seed=3, telemetry_noise_std=1.5,
                         switch_drop_rate=0.5,
                         cap_windows=(CapWindow(0.0, 60.0, 0),))
    recovery = RecoveryConfig(cooldown_s=0.01, max_cooldown_s=0.05,
                              max_attempts=max_attempts)
    result = _run(_trace(3, duration=1.5), faults=storm,
                  recovery=recovery, seed=3)
    _assert_invariants(result)
    probes = sum(1 for e in result.events if e["event"] == "probe")
    # two devices, each bounded by the attempt budget per drain cycle;
    # the hard cap is attempts x readmissions, which the storm keeps
    # small — the real assertion is that the count is finite and the
    # run returned at all
    assert probes < 10_000


def test_chaos_runs_are_still_deterministic():
    """One composed storm, run twice: chaos is reproducible chaos."""
    storm = FaultProfile(seed=9, telemetry_noise_std=0.7,
                         switch_drop_rate=0.3,
                         telemetry_drop_rate=0.1,
                         cap_windows=(CapWindow(0.1, 0.5, 1),))
    recovery = RecoveryConfig(cooldown_s=0.05, max_cooldown_s=0.4)
    first = _run(_trace(9), faults=storm, recovery=recovery, seed=9)
    second = _run(_trace(9), faults=storm, recovery=recovery, seed=9)
    assert first.event_log() == second.event_log()
    assert first.report.to_dict() == second.report.to_dict()
