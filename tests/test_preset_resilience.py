"""Resilient :class:`PresetGovernor`: plan validation at install and
job start, the bisect ``level_for_op``, verify-after-switch with
bounded retry, the degradation ladder (pin → safe-level fallback),
external-cap handling and the naive fire-and-forget baseline."""

import pytest

from repro.governors import (
    FrequencyPlan,
    PlanStep,
    PresetGovernor,
    RuntimeHealth,
)
from repro.hw import InferenceJob, InferenceSimulator
from repro.hw.dvfs import SwitchResult
from repro.hw.faults import (
    OUTCOME_APPLIED,
    OUTCOME_CAPPED,
    OUTCOME_DROPPED,
    CapWindow,
    FaultProfile,
)
from repro.hw.telemetry import KIND_GPU_OP

pytestmark = pytest.mark.faults


def _result(achieved, requested, outcome=OUTCOME_DROPPED, t=0.0):
    return SwitchResult(t=t, requested_level=requested,
                        achieved_level=achieved, outcome=outcome)


def _governor_on(platform, graph, level=3, **kwargs):
    plan = FrequencyPlan(graph_name=graph.name,
                         steps=[PlanStep(0, level)])
    gov = PresetGovernor([plan], **kwargs)
    gov.reset(platform)
    gov.on_job_start(0, InferenceJob(graph=graph))
    return gov


class TestLevelForOpBisect:
    def test_matches_linear_scan_reference(self):
        plan = FrequencyPlan(graph_name="g", steps=[
            PlanStep(0, 2), PlanStep(3, 9), PlanStep(4, 1),
            PlanStep(17, 6), PlanStep(40, 0)])

        def reference(op_index):
            level = plan.steps[0].level
            for step in plan.steps:
                if step.op_index <= op_index:
                    level = step.level
            return level

        for op in range(60):
            assert plan.level_for_op(op) == reference(op), op


class TestPlanValidation:
    def test_install_clamps_to_platform_ladder(self, tiny_platform,
                                               small_cnn):
        gov = _governor_on(tiny_platform, small_cnn, level=99)
        assert gov.health.levels_clamped == 1
        assert gov.on_op_start(0, 0, None) == tiny_platform.max_level

    def test_add_plan_after_reset_is_clamped(self, tiny_platform):
        gov = PresetGovernor([FrequencyPlan("a", [PlanStep(0, 1)])])
        gov.reset(tiny_platform)
        gov.add_plan(FrequencyPlan("b", [PlanStep(0, 42)]))
        assert gov.health.levels_clamped == 1

    def test_rejects_plan_past_graph_end(self, tiny_platform, small_cnn):
        n_ops = len(small_cnn.compute_nodes())
        plan = FrequencyPlan(graph_name=small_cnn.name,
                             steps=[PlanStep(0, 1),
                                    PlanStep(n_ops + 5, 2)])
        gov = PresetGovernor([plan])
        gov.reset(tiny_platform)
        job = InferenceJob(graph=small_cnn)
        # Rejected plans fall back to the default level and are counted
        # once per graph, not once per job.
        assert gov.on_job_start(0, job) == tiny_platform.max_level
        gov.on_job_start(1, job)
        assert gov.health.plans_rejected == 1
        assert gov.on_op_start(0, 0, None) is None

    def test_rejects_fingerprint_mismatch(self, tiny_platform,
                                          small_cnn):
        plan = FrequencyPlan(graph_name=small_cnn.name,
                             steps=[PlanStep(0, 1)],
                             graph_fingerprint="not-this-graph")
        gov = PresetGovernor([plan])
        gov.reset(tiny_platform)
        gov.on_job_start(0, InferenceJob(graph=small_cnn))
        assert gov.health.plans_rejected == 1

    def test_accepts_matching_fingerprint(self, tiny_platform,
                                          small_cnn):
        plan = FrequencyPlan(graph_name=small_cnn.name,
                             steps=[PlanStep(0, 2)],
                             graph_fingerprint=small_cnn.fingerprint())
        gov = PresetGovernor([plan])
        gov.reset(tiny_platform)
        gov.on_job_start(0, InferenceJob(graph=small_cnn))
        assert gov.health.plans_rejected == 0
        assert gov.on_op_start(0, 0, None) == 2


class TestDegradationLadder:
    def test_retry_then_pin(self, tiny_platform, small_cnn):
        gov = _governor_on(tiny_platform, small_cnn, level=3,
                           max_retries=2)
        assert gov.on_op_start(0, 0, None) == 3
        # Two dropped commands are retried at the same decision point.
        assert gov.on_switch_result(_result(1, 3)) == 3
        assert gov.on_switch_result(_result(1, 3)) == 3
        assert gov.health.switch_retries == 2
        # The third failure exhausts the budget: pin at what we got.
        assert gov.on_switch_result(_result(1, 3)) is None
        assert gov.health.switch_failures == 1
        assert gov.health.blocks_pinned == 1
        # Later batches hold the pinned level instead of re-fighting.
        assert gov.on_op_start(0, 0, None) == 1

    def test_fallback_to_safe_level(self, tiny_platform, small_cnn):
        plan = FrequencyPlan(graph_name=small_cnn.name,
                             steps=[PlanStep(0, 1), PlanStep(1, 4),
                                    PlanStep(2, 2)])
        gov = PresetGovernor([plan], max_retries=0,
                             max_block_failures=2)
        gov.reset(tiny_platform)
        gov.on_job_start(0, InferenceJob(graph=small_cnn))
        gov.on_op_start(0, 0, None)
        assert gov.on_switch_result(_result(0, 1)) is None  # pin #1
        gov.on_op_start(0, 1, None)
        # Second pinned block abandons the plan: the governor answers
        # with the safe static level (plan median) as a final attempt.
        assert gov.on_switch_result(_result(0, 4)) == plan.safe_level()
        assert gov.health.plan_fallbacks == 1
        assert gov.health.degraded
        # The rest of the job stays static.
        assert gov.on_op_start(0, 2, None) is None
        # The next job starts with a clean slate.
        gov.on_job_start(1, InferenceJob(graph=small_cnn))
        assert gov.on_op_start(1, 0, None) == 1

    def test_safe_level_override(self, tiny_platform, small_cnn):
        gov = _governor_on(tiny_platform, small_cnn, level=3,
                           max_retries=0, max_block_failures=1,
                           safe_level=2)
        gov.on_op_start(0, 0, None)
        assert gov.on_switch_result(_result(0, 3)) == 2

    def test_clean_switch_disarms(self, tiny_platform, small_cnn):
        gov = _governor_on(tiny_platform, small_cnn, level=3)
        gov.on_op_start(0, 0, None)
        assert gov.on_switch_result(
            _result(3, 3, OUTCOME_APPLIED)) is None
        assert not gov.health.degraded
        assert gov.health.switch_retries == 0

    def test_capped_command_is_honored_not_fought(self, tiny_platform,
                                                  small_cnn):
        """External caps are environmental: no retries, no pin — the
        plan stays armed and re-asserts at the next decision point."""
        gov = _governor_on(tiny_platform, small_cnn, level=3)
        gov.on_op_start(0, 0, None)
        assert gov.on_switch_result(
            _result(0, 3, OUTCOME_CAPPED)) is None
        assert gov.health.caps_honored == 1
        assert gov.health.switch_retries == 0
        assert gov.health.blocks_pinned == 0
        # Next batch: the original target is requested again.
        assert gov.on_op_start(0, 0, None) == 3

    def test_unsolicited_switch_is_ignored(self, tiny_platform,
                                           small_cnn):
        gov = _governor_on(tiny_platform, small_cnn, level=3)
        # No request armed (e.g. thermal enforcement): nothing to verify.
        assert gov.on_switch_result(_result(1, 1, OUTCOME_CAPPED)) is None
        assert gov.health.caps_honored == 0

    def test_parameter_validation(self):
        plan = FrequencyPlan("g", [PlanStep(0, 1)])
        with pytest.raises(ValueError):
            PresetGovernor([plan], max_retries=-1)
        with pytest.raises(ValueError):
            PresetGovernor([plan], max_block_failures=0)


class TestNaiveRuntime:
    def test_skips_redundant_writes_and_never_verifies(
            self, tiny_platform, small_cnn):
        gov = _governor_on(tiny_platform, small_cnn, level=3,
                           resilient=False)
        assert gov.on_op_start(0, 0, None) == 3
        # It now *believes* level 3 is in force and never re-issues —
        # even though the command may have been silently dropped.
        assert gov.on_op_start(0, 0, None) is None
        gov.on_job_start(1, InferenceJob(graph=small_cnn))
        assert gov.on_op_start(1, 0, None) is None
        assert gov.on_switch_result(_result(0, 3)) is None
        assert not gov.health.degraded

    def test_matches_resilient_when_fault_free(self, tiny_platform,
                                               small_cnn):
        plan = FrequencyPlan(graph_name=small_cnn.name,
                             steps=[PlanStep(0, 2), PlanStep(3, 4)])
        job = InferenceJob(graph=small_cnn, n_batches=3)
        results = {}
        for resilient in (True, False):
            gov = PresetGovernor([plan], resilient=resilient)
            sim = InferenceSimulator(tiny_platform)
            results[resilient] = sim.run([job, job], gov)
        assert results[True].report.total_energy == \
            results[False].report.total_energy
        assert results[True].switch_count == results[False].switch_count


class TestEndToEndUnderFaults:
    def test_total_drop_degrades_but_completes(self, tiny_platform,
                                               small_cnn):
        """At a 100 % drop rate nothing ever lands: the run must still
        finish, with the ladder fully exercised and counted."""
        plan = FrequencyPlan(graph_name=small_cnn.name,
                             steps=[PlanStep(0, 1)])
        gov = PresetGovernor([plan])
        sim = InferenceSimulator(
            tiny_platform, faults=FaultProfile(switch_drop_rate=1.0))
        result = sim.run([InferenceJob(graph=small_cnn, n_batches=2)],
                         gov)
        assert result.report.total_energy > 0
        assert gov.health.switch_retries > 0
        assert gov.health.blocks_pinned > 0
        assert result.fault_stats.switches_dropped > 0

    def test_cap_window_recovery(self, tiny_platform, small_cnn):
        """A cap spanning the first half of the run truncates the plan's
        requests; the resilient runtime honors it (no retries, no pins)
        and re-asserts its way back once the window has passed."""
        plan = FrequencyPlan(graph_name=small_cnn.name,
                             steps=[PlanStep(0, 1)])
        job = InferenceJob(graph=small_cnn, n_batches=4)
        baseline = InferenceSimulator(tiny_platform).run(
            [job], PresetGovernor([plan]))
        profile = FaultProfile(cap_windows=(
            CapWindow(0.0, baseline.report.total_time / 2, 0),))
        gov = PresetGovernor([plan])
        sim = InferenceSimulator(tiny_platform, faults=profile)
        result = sim.run([job], gov)
        assert gov.health.caps_honored >= 1
        assert gov.health.blocks_pinned == 0
        assert gov.health.switch_retries == 0
        # The plan level is back in force by the end of the run.
        gpu_ops = [s for s in result.trace.segments
                   if s.kind == KIND_GPU_OP]
        assert gpu_ops[0].gpu_level == 0
        assert gpu_ops[-1].gpu_level == 1


class TestRuntimeHealth:
    def test_to_dict_and_degraded(self):
        health = RuntimeHealth()
        assert not health.degraded
        assert set(health.to_dict()) == {
            "switch_retries", "switch_failures", "blocks_pinned",
            "plans_rejected", "plan_fallbacks", "levels_clamped",
            "caps_honored"}
        health.plan_fallbacks = 1
        assert health.degraded
        # Retries and honored caps alone are routine, not degradation.
        assert not RuntimeHealth(switch_retries=5, caps_honored=2).degraded
