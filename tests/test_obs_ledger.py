"""Energy-attribution ledger: the reconciliation invariant (attributed
energy/time equals the simulator's own totals to <= 1e-9 relative
error) property-tested across random networks, fault profiles and every
governor family, plus the misprediction sweep and rendering."""

import json
import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.governors import FrequencyPlan, OndemandGovernor, PlanStep, \
    PresetGovernor, StaticGovernor, fpg_g
from repro.hw import FaultProfile, InferenceJob, InferenceSimulator, \
    jetson_tx2
from repro.models.random_gen import RandomDNNConfig, RandomDNNGenerator
from repro.obs.ledger import EnergyLedger, RECONCILIATION_TOLERANCE

from tests.conftest import build_small_cnn

pytestmark = pytest.mark.obs

_TINY_DNNS = RandomDNNConfig(min_stages=1, max_stages=2,
                             max_blocks_per_stage=2)

_FAULTS = (
    None,
    FaultProfile(switch_drop_rate=0.4, seed=5),
    FaultProfile(telemetry_noise_std=0.5, switch_delay_rate=0.5,
                 switch_delay_s=0.02, seed=9),
)

_GOVERNOR_NAMES = ("preset", "ondemand", "static", "fpg")


def _governor_and_plan(name, graph):
    """Governor under test plus the plan to attribute against (None for
    the reactive families — they run as one whole-graph block)."""
    if name == "preset":
        n_ops = len(graph.compute_nodes())
        steps = [PlanStep(0, 2)]
        if n_ops > 3:
            steps.append(PlanStep(3, 9))
        if n_ops > 6:
            steps.append(PlanStep(6, 5))
        plan = FrequencyPlan(graph_name=graph.name, steps=steps)
        return PresetGovernor([plan]), plan
    if name == "ondemand":
        return OndemandGovernor(), None
    if name == "static":
        return StaticGovernor(level=4), None
    return fpg_g(), None


class TestReconciliationProperty:
    @settings(max_examples=16, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**16),
           governor=st.sampled_from(_GOVERNOR_NAMES),
           fault_idx=st.integers(min_value=0, max_value=len(_FAULTS) - 1))
    def test_attribution_closes_against_simulator_totals(
            self, seed, governor, fault_idx):
        graph = RandomDNNGenerator(seed=seed % 13,
                                   config=_TINY_DNNS).generate()
        gov, plan = _governor_and_plan(governor, graph)
        sim = InferenceSimulator(jetson_tx2(), seed=seed,
                                 keep_trace=True,
                                 faults=_FAULTS[fault_idx])
        result = sim.run(
            [InferenceJob(graph=graph, batch_size=4, n_batches=2)], gov)
        ledger = EnergyLedger.from_result(result, plan=plan, graph=graph)

        rec = ledger.reconciliation
        assert rec.ok
        assert rec.energy_rel_err <= RECONCILIATION_TOLERANCE
        assert rec.time_rel_err <= RECONCILIATION_TOLERANCE
        # Block + overhead partition is exhaustive and non-overlapping.
        assert math.isclose(ledger.block_energy_j
                            + ledger.overhead_energy_j,
                            ledger.total_energy_j, rel_tol=1e-12)
        # Per-level residency inside each block sums to the block time.
        for block in ledger.blocks:
            if block.level_time:
                assert math.isclose(sum(block.level_time.values()),
                                    block.time_s, rel_tol=1e-9)

    def test_single_block_without_plan_covers_every_op(self):
        graph = build_small_cnn()
        sim = InferenceSimulator(jetson_tx2(), keep_trace=True)
        result = sim.run([InferenceJob(graph=graph, n_batches=2)],
                         OndemandGovernor())
        ledger = EnergyLedger.from_result(result, graph=graph)
        assert len(ledger.blocks) == 1
        block = ledger.blocks[0]
        assert (block.op_start, block.op_stop) == \
            (0, len(graph.compute_nodes()))
        # Per-op rows re-partition exactly the block's attribution.
        assert math.isclose(sum(op.energy_j for op in ledger.ops),
                            block.energy_j, rel_tol=1e-12)
        assert ledger.reconciliation.ok


class TestMisprediction:
    def test_fitted_sweep_labels_every_block(self, fitted_lens):
        graph = build_small_cnn()
        governor = fitted_lens.governor([graph])
        sim = InferenceSimulator(fitted_lens.platform, keep_trace=True)
        result = sim.run([InferenceJob(graph=graph, n_batches=2)],
                         governor)
        ledger = fitted_lens.ledger(result, graph,
                                    plan=governor.plan_for(graph.name))
        assert ledger.reconciliation.ok
        for block in ledger.blocks:
            assert block.best_level is not None
            assert block.planned_energy_j is not None
            assert block.best_energy_j is not None
            # The sweep winner can never be beaten by the planned level.
            assert block.best_energy_j <= block.planned_energy_j + 1e-12
            if block.mispredicted:
                assert block.best_level != block.planned_level
                assert block.predicted_savings_frac > 0.005

    def test_planned_level_winning_is_not_flagged(self, fitted_lens):
        graph = build_small_cnn()
        table = fitted_lens.evaluator.profile_table(
            graph, fitted_lens.config.batch_size)
        ops = list(range(table.n_ops))
        best = fitted_lens.evaluator.best_level(
            table.block_profile(ops), fitted_lens.config.latency_slack)
        plan = FrequencyPlan(graph_name=graph.name,
                             steps=[PlanStep(0, best)])
        sim = InferenceSimulator(fitted_lens.platform, keep_trace=True)
        result = sim.run([InferenceJob(graph=graph, n_batches=1)],
                         PresetGovernor([plan]))
        ledger = fitted_lens.ledger(result, graph, plan=plan)
        assert ledger.mispredicted_blocks() == []


class TestLedgerInterface:
    def test_requires_kept_trace(self):
        graph = build_small_cnn()
        sim = InferenceSimulator(jetson_tx2(), keep_trace=False)
        result = sim.run([InferenceJob(graph=graph, n_batches=1)],
                         OndemandGovernor())
        with pytest.raises(ValueError, match="keep_trace"):
            EnergyLedger.from_result(result)

    def test_to_dict_is_json_serializable(self):
        graph = build_small_cnn()
        gov, plan = _governor_and_plan("preset", graph)
        sim = InferenceSimulator(jetson_tx2(), keep_trace=True)
        result = sim.run([InferenceJob(graph=graph, n_batches=1)], gov)
        ledger = EnergyLedger.from_result(result, plan=plan, graph=graph)
        payload = json.loads(json.dumps(ledger.to_dict()))
        assert payload["reconciliation"]["ok"] is True
        assert len(payload["blocks"]) == len(ledger.blocks)
        assert payload["images"] == result.report.images

    def test_format_table_reports_reconciliation_and_overheads(self):
        graph = build_small_cnn()
        gov, plan = _governor_and_plan("preset", graph)
        sim = InferenceSimulator(jetson_tx2(), keep_trace=True)
        result = sim.run([InferenceJob(graph=graph, n_batches=2)], gov)
        ledger = EnergyLedger.from_result(result, plan=plan, graph=graph)
        table = ledger.format_table()
        assert "reconciliation:" in table
        assert "(ok)" in table
        assert "cpu" in table        # CPU preprocessing bucket rendered
        assert "verdict" in table

    def test_ledger_is_observe_only(self):
        """Building the ledger must not mutate the result it reads."""
        graph = build_small_cnn()
        sim = InferenceSimulator(jetson_tx2(), keep_trace=True)
        result = sim.run([InferenceJob(graph=graph, n_batches=2)],
                         OndemandGovernor())
        segments = list(result.trace.segments)
        report = result.report
        EnergyLedger.from_result(result, graph=graph)
        assert result.trace.segments == segments
        assert result.report == report
