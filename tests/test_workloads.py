"""Workload construction tests."""

import numpy as np
import pytest

from repro.workloads import (
    ImageBatchSpec,
    TaskFlowConfig,
    make_model_job,
    make_taskflow,
    synthetic_batch,
)


class TestImages:
    def test_spec_shape(self):
        spec = ImageBatchSpec(batch_size=4)
        assert spec.shape == (4, 3, 224, 224)
        assert spec.pixels == 4 * 3 * 224 * 224
        assert spec.nbytes() == spec.pixels * 4

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            ImageBatchSpec(batch_size=0)

    def test_synthetic_batch(self):
        spec = ImageBatchSpec(batch_size=2, height=32, width=32)
        batch = synthetic_batch(spec, seed=1)
        assert batch.shape == spec.shape
        assert batch.dtype == np.float32
        assert np.array_equal(batch, synthetic_batch(spec, seed=1))


class TestModelJob:
    def test_job_sizes(self, small_cnn):
        job = make_model_job(small_cnn, n_runs=50, batch_size=16)
        assert job.images == 800
        assert job.graph is small_cnn
        assert "ee_test" in job.name


class TestTaskFlow:
    def test_paper_defaults(self):
        cfg = TaskFlowConfig()
        assert cfg.n_tasks == 100
        assert cfg.images_per_task == 50

    def test_validation(self):
        with pytest.raises(ValueError):
            TaskFlowConfig(n_tasks=0)
        with pytest.raises(ValueError):
            TaskFlowConfig(images_per_task=50, batch_size=7)

    def test_flow_composition(self, small_cnn):
        cfg = TaskFlowConfig(n_tasks=10, images_per_task=20, batch_size=10,
                             model_names=("small",), seed=0)
        jobs = make_taskflow(cfg, graphs={"small": small_cnn})
        assert len(jobs) == 10
        assert all(j.images == 20 for j in jobs)
        assert all(j.n_batches == 2 for j in jobs)

    def test_flow_deterministic(self, small_cnn):
        graphs = {"small": small_cnn}
        cfg = TaskFlowConfig(n_tasks=5, images_per_task=10, batch_size=10,
                             model_names=("small",), seed=4)
        a = make_taskflow(cfg, graphs=graphs)
        b = make_taskflow(cfg, graphs=graphs)
        assert [j.name for j in a] == [j.name for j in b]

    def test_flow_samples_multiple_models(self):
        cfg = TaskFlowConfig(n_tasks=30, images_per_task=10, batch_size=10,
                             model_names=("alexnet", "resnet18"), seed=0)
        jobs = make_taskflow(cfg)
        names = {j.graph.name for j in jobs}
        assert names == {"alexnet", "resnet18"}
