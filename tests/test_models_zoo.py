"""Model zoo tests: construction, validity, registry, paper fidelity."""

import pytest

from repro.graph import graph_metrics, validate_graph
from repro.graph.ops import OpCategory, OpType
from repro.models import PAPER_MODELS, build_model, list_models
from repro.models.zoo import register_model


class TestRegistry:
    def test_paper_models_complete(self):
        assert len(PAPER_MODELS) == 12

    @pytest.mark.parametrize("name", PAPER_MODELS + [
        "efficientnet_b0", "efficientnet_b4", "squeezenet1_1",
        "inception_v3", "wide_resnet50_2", "vit_l_16",
        "densenet121", "regnet_x_400mf", "mobilenet_v3_small",
    ])
    def test_paper_model_builds_and_validates(self, name):
        g = build_model(name)
        errors = [i for i in validate_graph(g) if i.severity == "error"]
        assert errors == []

    def test_aliases_resolve(self):
        assert build_model("mobilenet_v3").name == "mobilenet_v3_large"
        assert build_model("resnext101").name == "resnext101_32x8d"
        assert build_model("vit_base_16").name == "vit_b_16"

    def test_unknown_model_raises_with_listing(self):
        with pytest.raises(KeyError, match="available"):
            build_model("resnet9000")

    def test_list_models_sorted(self):
        models = list_models()
        assert models == sorted(models)
        assert "resnet152" in models

    def test_register_custom(self):
        from repro.models.alexnet import alexnet
        register_model("my_alexnet", alexnet)
        assert "my_alexnet" in list_models()

    def test_num_classes_respected(self):
        g = build_model("resnet18", num_classes=13)
        head = g.compute_nodes()[-1]
        assert head.op is OpType.LINEAR
        assert head.output_shape == (13,)


class TestArchitectureFidelity:
    def test_resnet152_block_structure(self):
        g = build_model("resnet152")
        # 50 bottlenecks -> 50 residual adds.
        assert g.residual_count() == 3 + 8 + 36 + 3

    def test_resnet34_residuals(self):
        assert build_model("resnet34").residual_count() == 16

    def test_vit_b16_attention_count(self):
        g = build_model("vit_b_16")
        attn = [n for n in g.compute_nodes()
                if n.op is OpType.ATTENTION]
        assert len(attn) == 12
        assert all(n.attrs.num_heads == 12 for n in attn)

    def test_vit_b32_fewer_tokens_than_b16(self):
        g16 = build_model("vit_b_16")
        g32 = build_model("vit_b_32")
        tokens16 = next(n for n in g16.compute_nodes()
                        if n.op is OpType.CLS_POS_EMBED).output_shape[0]
        tokens32 = next(n for n in g32.compute_nodes()
                        if n.op is OpType.CLS_POS_EMBED).output_shape[0]
        assert tokens16 == 197
        assert tokens32 == 50

    def test_googlenet_concat_modules(self):
        g = build_model("googlenet")
        concats = [n for n in g.compute_nodes() if n.op is OpType.CONCAT]
        assert len(concats) == 9  # nine inception modules

    def test_mobilenet_has_depthwise(self):
        g = build_model("mobilenet_v3")
        dw = [n for n in g.compute_nodes()
              if n.category is OpCategory.DWCONV]
        assert len(dw) >= 15

    def test_densenet201_growth(self):
        g = build_model("densenet201")
        # Final feature channels: 64 + 32*6 -> /2 ... standard value 1920.
        bn_final = [n for n in g.compute_nodes()
                    if n.op is OpType.BATCHNORM2D][-1]
        assert bn_final.output_shape[0] == 1920

    @pytest.mark.parametrize("model,params_m", [
        ("efficientnet_b0", 5.33),
        ("squeezenet1_1", 1.24),
        ("inception_v3", 23.9),
        ("wide_resnet50_2", 68.9),
    ])
    def test_extended_zoo_param_counts(self, model, params_m):
        from repro.graph import graph_metrics
        total = graph_metrics(build_model(model)).total_params / 1e6
        assert total == pytest.approx(params_m, rel=0.03)

    def test_inception_asymmetric_kernels(self):
        g = build_model("inception_v3")
        kernels = {n.attrs.kernel for n in g.compute_nodes()
                   if n.op is OpType.CONV2D}
        assert (1, 7) in kernels and (7, 1) in kernels

    def test_vgg19_conv_count(self):
        g = build_model("vgg19")
        convs = [n for n in g.compute_nodes() if n.op is OpType.CONV2D]
        assert len(convs) == 16

    def test_regnet_y_has_se(self):
        g = build_model("regnet_y_128gf")
        muls = [n for n in g.compute_nodes() if n.op is OpType.MUL]
        assert len(muls) == 2 + 7 + 17 + 1  # one SE gate per block

    def test_regnet_x_has_no_se(self):
        g = build_model("regnet_x_32gf")
        muls = [n for n in g.compute_nodes() if n.op is OpType.MUL]
        assert muls == []

    def test_size_ordering(self):
        sizes = {
            name: graph_metrics(build_model(name)).total_flops
            for name in ("alexnet", "resnet34", "resnet152",
                         "regnet_y_128gf")
        }
        assert sizes["alexnet"] < sizes["resnet34"] < \
            sizes["resnet152"] < sizes["regnet_y_128gf"]
