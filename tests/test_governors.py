"""Governor behaviour tests."""

import pytest

from repro.governors import (
    FPGGovernor,
    GOVERNOR_REGISTRY,
    OndemandGovernor,
    StaticGovernor,
    fpg_cg,
    fpg_g,
    make_governor,
)
from repro.hw import InferenceJob, InferenceSimulator
from repro.hw.telemetry import TelemetrySample


def _sample(level, busy, cu=None, mu=0.2, power=5.0, t=0.0):
    return TelemetrySample(
        t=t, period=0.02, gpu_level=level, gpu_busy=busy,
        compute_util=busy if cu is None else cu, memory_util=mu,
        gpu_power=power, cpu_power=1.0, total_power=power + 1.0)


class TestRegistry:
    def test_known_names(self):
        for name in ("bim", "ondemand", "fpg_g", "fpg_cg", "performance",
                     "static"):
            assert name in GOVERNOR_REGISTRY
            gov = make_governor(name)
            assert gov is not None

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            make_governor("quantum")


class TestStatic:
    def test_negative_index(self, tx2):
        gov = StaticGovernor(level=-1)
        gov.reset(tx2)
        assert gov.initial_gpu_level() == tx2.max_level

    def test_none_is_max(self, tx2):
        gov = StaticGovernor()
        gov.reset(tx2)
        assert gov.initial_gpu_level() == tx2.max_level

    def test_clamped(self, tx2):
        gov = StaticGovernor(level=500)
        gov.reset(tx2)
        assert gov.initial_gpu_level() == tx2.max_level


class TestOndemand:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            OndemandGovernor(up_threshold=1.5)
        with pytest.raises(ValueError):
            OndemandGovernor(up_threshold=0.5, down_differential=0.6)

    def test_races_to_max_under_load(self, tx2):
        gov = OndemandGovernor()
        gov.reset(tx2)
        assert gov.on_sample(_sample(level=3, busy=0.99)) == tx2.max_level

    def test_steps_down_when_light(self, tx2):
        gov = OndemandGovernor()
        gov.reset(tx2)
        target = gov.on_sample(_sample(level=10, busy=0.10))
        assert target is not None and target < 10

    def test_deadband_holds(self, tx2):
        gov = OndemandGovernor()
        gov.reset(tx2)
        assert gov.on_sample(_sample(level=6, busy=0.88)) is None

    def test_ping_pong_on_alternating_load(self, tx2):
        """Alternating idle/busy windows produce the Figure-1(A)
        oscillation between ladder ends."""
        gov = OndemandGovernor()
        gov.reset(tx2)
        levels = [gov.initial_gpu_level()]
        cur = levels[0]
        for i in range(8):
            busy = 0.99 if i % 2 else 0.02
            target = gov.on_sample(_sample(level=cur, busy=busy))
            if target is not None:
                cur = target
            levels.append(cur)
        assert 0 in levels and tx2.max_level in levels

    def test_lag_one_window(self, tx2, small_cnn):
        """The governor only reacts after a window closes: the first
        busy window still runs at the idle level."""
        sim = InferenceSimulator(tx2, sample_period=0.01)
        job = InferenceJob(graph=small_cnn, batch_size=16, n_batches=1,
                           cpu_work_per_image=2e8)
        r = sim.run([job], OndemandGovernor())
        gpu_segments = [s for s in r.trace.segments if s.kind == "gpu_op"]
        assert gpu_segments[0].gpu_level < tx2.max_level


class TestFPG:
    def test_idle_parks_low(self, tx2):
        gov = fpg_g()
        gov.reset(tx2)
        assert gov.on_sample(_sample(level=9, busy=0.01)) == 0

    def test_burst_ramps_high_first(self, tx2):
        gov = fpg_g()
        gov.reset(tx2)
        gov.on_sample(_sample(level=9, busy=0.01))     # go idle
        target = gov.on_sample(_sample(level=0, busy=0.95))
        assert target == round(0.85 * tx2.max_level)

    def test_searches_downward_initially(self, tx2):
        gov = FPGGovernor(adjust_every=1)
        gov.reset(tx2)
        gov.on_sample(_sample(level=9, busy=0.01))
        start = gov.on_sample(_sample(level=0, busy=0.95))
        nxt = gov.on_sample(_sample(level=start, busy=0.95, power=20.0))
        assert nxt == start - 1

    def test_reverses_when_proxy_degrades(self, tx2):
        gov = FPGGovernor(adjust_every=1)
        gov.reset(tx2)
        gov.on_sample(_sample(level=9, busy=0.01))
        lvl = gov.on_sample(_sample(level=0, busy=0.95))
        # Good proxy, then much worse proxy -> direction flips upward.
        lvl2 = gov.on_sample(_sample(level=lvl, busy=0.95, cu=0.9,
                                     power=10.0))
        lvl3 = gov.on_sample(_sample(level=lvl2, busy=0.95, cu=0.1,
                                     power=30.0))
        assert lvl3 == lvl2 + 1

    def test_cpu_policies(self):
        assert fpg_g().cpu_policy == "ondemand"
        assert fpg_cg().cpu_policy == "efficient"
        assert fpg_g().name == "fpg_g"
        assert fpg_cg().name == "fpg_cg"

    def test_adjust_every_skips_windows(self, tx2):
        gov = FPGGovernor(adjust_every=3)
        gov.reset(tx2)
        gov.on_sample(_sample(level=9, busy=0.01))
        gov.on_sample(_sample(level=0, busy=0.95))  # ramp
        assert gov.on_sample(_sample(level=11, busy=0.95)) is None
        assert gov.on_sample(_sample(level=11, busy=0.95)) is None
        assert gov.on_sample(_sample(level=11, busy=0.95)) is not None


class TestEndToEndOrdering:
    def test_ee_ordering_bim_worst(self, tx2):
        """On a sustained workload: adaptive governors beat the
        race-to-max built-in governor in energy efficiency."""
        from repro.models import build_model
        graph = build_model("resnet34")
        job = InferenceJob(graph=graph, batch_size=16, n_batches=4,
                           cpu_work_per_image=5e7)
        results = {}
        for gov in (OndemandGovernor(), fpg_g()):
            sim = InferenceSimulator(tx2, sample_period=0.02,
                                     keep_trace=False)
            results[gov.name] = sim.run(
                [job], gov).report.energy_efficiency
        assert results["fpg_g"] > results["bim"]
