"""DVFS controller and telemetry/trace accounting tests."""

import pytest

from repro.hw.dvfs import DVFSController, DVFSSwitch
from repro.hw.telemetry import (
    KIND_CPU,
    KIND_GPU_OP,
    KIND_SWITCH,
    EnergyReport,
    TelemetrySample,
    Trace,
    TraceSegment,
    format_tegrastats,
    report_from_trace,
)


def _seg(t0, t1, kind=KIND_GPU_OP, level=3, gpu=5.0, cpu=1.0, board=2.0):
    return TraceSegment(t_start=t0, t_end=t1, kind=kind, gpu_level=level,
                        gpu_power=gpu, cpu_power=cpu, board_power=board)


class TestDVFSController:
    def test_noop_request_ignored(self, tx2):
        c = DVFSController(tx2, level=3)
        assert c.request(0.0, 3) is None
        assert c.switch_count() == 0

    def test_request_clamps(self, tx2):
        c = DVFSController(tx2, level=0)
        sw = c.request(0.0, 999)
        assert sw.to_level == tx2.max_level
        assert c.level == tx2.max_level

    def test_history_records(self, tx2):
        c = DVFSController(tx2, level=0)
        c.request(0.0, 5)
        c.request(1.0, 2)
        assert c.switch_count() == 2
        assert c.history[0] == DVFSSwitch(0.0, 0, 5)
        assert c.history[1].direction == -1

    def test_reversal_counting(self, tx2):
        c = DVFSController(tx2, level=0)
        for t, lvl in enumerate([5, 2, 6, 1, 8]):  # up,down,up,down,up
            c.request(float(t), lvl)
        assert c.reversal_count() == 4
        assert c.reversal_rate(2.0) == pytest.approx(2.0)

    def test_monotone_ramp_has_no_reversals(self, tx2):
        c = DVFSController(tx2, level=0)
        for t, lvl in enumerate([2, 4, 6, 8, 10]):
            c.request(float(t), lvl)
        assert c.reversal_count() == 0

    def test_freq_property(self, tx2):
        c = DVFSController(tx2, level=4)
        assert c.freq == tx2.freq_of_level(4)


class TestTrace:
    def test_energy_is_integral_of_power(self):
        tr = Trace()
        tr.append(_seg(0.0, 1.0, gpu=5.0, cpu=1.0, board=2.0))
        tr.append(_seg(1.0, 3.0, gpu=3.0, cpu=0.5, board=2.0))
        assert tr.total_time == pytest.approx(3.0)
        assert tr.gpu_energy == pytest.approx(5.0 + 2 * 3.0)
        assert tr.cpu_energy == pytest.approx(1.0 + 2 * 0.5)
        assert tr.board_energy == pytest.approx(2.0 + 2 * 2.0)
        assert tr.total_energy == pytest.approx(tr.gpu_energy
                                                + tr.cpu_energy
                                                + tr.board_energy)

    def test_average_power(self):
        tr = Trace()
        tr.append(_seg(0.0, 2.0, gpu=4.0, cpu=0.0, board=0.0))
        assert tr.average_power == pytest.approx(4.0)

    def test_negative_duration_rejected(self):
        tr = Trace()
        with pytest.raises(ValueError):
            tr.append(_seg(1.0, 0.5))

    def test_busy_time_counts_only_gpu_ops(self):
        tr = Trace()
        tr.append(_seg(0.0, 1.0, kind=KIND_GPU_OP))
        tr.append(_seg(1.0, 2.0, kind=KIND_CPU))
        assert tr.busy_gpu_time == pytest.approx(1.0)

    def test_switch_count(self):
        tr = Trace()
        tr.append(_seg(0.0, 0.001, kind=KIND_SWITCH))
        tr.append(_seg(0.001, 1.0))
        assert tr.switch_count == 1

    def test_segments_dropped_but_scalars_kept(self):
        tr = Trace(keep_segments=False)
        tr.append(_seg(0.0, 1.0))
        assert tr.segments == []
        assert tr.total_energy > 0

    def test_frequency_timeline_merges_runs(self):
        tr = Trace()
        tr.append(_seg(0.0, 1.0, level=3))
        tr.append(_seg(1.0, 2.0, level=3))
        tr.append(_seg(2.0, 3.0, level=7))
        timeline = tr.frequency_timeline()
        assert timeline == [(0.0, 2.0, 3), (2.0, 3.0, 7)]

    def test_level_residency_sums_to_one(self):
        tr = Trace()
        tr.append(_seg(0.0, 1.0, level=0))
        tr.append(_seg(1.0, 4.0, level=2))
        res = tr.level_residency(4)
        assert sum(res) == pytest.approx(1.0)
        assert res[2] == pytest.approx(0.75)


class TestEnergyReport:
    def test_ee_definition_matches_equation_1(self):
        """EE = images / E = FPS / P-bar (equation 1 of the paper)."""
        r = EnergyReport(images=100, total_time=10.0, total_energy=50.0,
                         gpu_energy=30.0, cpu_energy=15.0,
                         board_energy=5.0, switch_count=0)
        assert r.energy_efficiency == pytest.approx(2.0)
        assert r.fps / r.average_power == pytest.approx(
            r.energy_efficiency)
        assert r.energy_per_image == pytest.approx(0.5)

    def test_zero_guards(self):
        r = EnergyReport(images=0, total_time=0.0, total_energy=0.0,
                         gpu_energy=0, cpu_energy=0, board_energy=0,
                         switch_count=0)
        assert r.energy_efficiency == 0.0
        assert r.fps == 0.0
        assert r.average_power == 0.0
        assert r.energy_per_image == 0.0

    def test_report_from_trace(self):
        tr = Trace()
        tr.append(_seg(0.0, 2.0))
        r = report_from_trace(tr, images=4)
        assert r.images == 4
        assert r.total_energy == pytest.approx(tr.total_energy)


def test_tegrastats_format():
    s = TelemetrySample(t=1.5, period=0.02, gpu_level=7, gpu_busy=0.87,
                        compute_util=0.5, memory_util=0.3, gpu_power=6.54,
                        cpu_power=0.81, total_power=9.0)
    text = format_tegrastats([s], "tx2")
    assert "GR3D_FREQ  87%@L07" in text
    assert "VDD_GPU   6540mW" in text
    assert "TOTAL   9000mW" in text
