"""Operator taxonomy tests."""

import pytest

from repro.graph.ops import (
    ACTIVATION_COST_FACTORS,
    CATEGORY_ORDER,
    ActivationAttrs,
    AttentionAttrs,
    ConvAttrs,
    InputAttrs,
    LinearAttrs,
    OpCategory,
    OpType,
    attrs_class_for,
    category_of,
    default_attrs_for,
    is_activation,
)


class TestCategories:
    def test_dense_conv_is_conv(self):
        attrs = ConvAttrs(out_channels=64, groups=1)
        assert category_of(OpType.CONV2D, attrs) is OpCategory.CONV

    def test_depthwise_conv_is_dwconv(self):
        attrs = ConvAttrs(out_channels=64, groups=64)
        assert category_of(OpType.CONV2D, attrs) is OpCategory.DWCONV

    def test_grouped_conv_below_out_channels_stays_conv(self):
        # ResNeXt-style cardinality (groups < out_channels) is not
        # depthwise behaviour.
        attrs = ConvAttrs(out_channels=256, groups=32)
        assert category_of(OpType.CONV2D, attrs) is OpCategory.CONV

    def test_linear(self):
        assert category_of(OpType.LINEAR, LinearAttrs(10)) \
            is OpCategory.LINEAR

    def test_attention(self):
        attrs = AttentionAttrs(embed_dim=64, num_heads=4)
        assert category_of(OpType.ATTENTION, attrs) is OpCategory.ATTENTION

    @pytest.mark.parametrize("op", [OpType.BATCHNORM2D, OpType.LAYERNORM])
    def test_norms(self, op):
        assert category_of(op, None) is OpCategory.NORM

    @pytest.mark.parametrize("op", [
        OpType.RELU, OpType.GELU, OpType.HARDSWISH, OpType.SOFTMAX,
        OpType.SIGMOID, OpType.SILU, OpType.TANH, OpType.RELU6,
        OpType.HARDSIGMOID,
    ])
    def test_activations(self, op):
        assert category_of(op, None) is OpCategory.ACTIVATION
        assert is_activation(op)

    @pytest.mark.parametrize("op", [
        OpType.MAXPOOL2D, OpType.AVGPOOL2D, OpType.ADAPTIVE_AVGPOOL2D,
    ])
    def test_pools(self, op):
        assert category_of(op, None) is OpCategory.POOL

    @pytest.mark.parametrize("op", [OpType.ADD, OpType.MUL, OpType.CONCAT])
    def test_elementwise(self, op):
        assert category_of(op, None) is OpCategory.ELEMENTWISE

    def test_input_is_io(self):
        assert category_of(OpType.INPUT, InputAttrs()) is OpCategory.IO

    def test_every_category_reachable(self):
        """Each coarse category has at least one concrete op mapping."""
        seen = set()
        for op in OpType:
            attrs = None
            if op is OpType.CONV2D:
                attrs = ConvAttrs(out_channels=8, groups=8)
                seen.add(category_of(op, ConvAttrs(out_channels=8)))
            seen.add(category_of(op, attrs))
        assert seen == set(OpCategory)


class TestAttrs:
    def test_attrs_class_for_conv(self):
        assert attrs_class_for(OpType.CONV2D) is ConvAttrs

    def test_attrs_class_for_activation(self):
        assert attrs_class_for(OpType.RELU) is ActivationAttrs

    def test_default_attrs_for_relu(self):
        assert default_attrs_for(OpType.RELU) == ActivationAttrs()

    def test_default_attrs_for_conv_raises(self):
        with pytest.raises(TypeError):
            default_attrs_for(OpType.CONV2D)

    def test_conv_attrs_frozen(self):
        attrs = ConvAttrs(out_channels=8)
        with pytest.raises(AttributeError):
            attrs.out_channels = 16

    def test_to_dict_roundtrippable(self):
        attrs = ConvAttrs(out_channels=8, kernel=(3, 3))
        d = attrs.to_dict()
        assert d["out_channels"] == 8
        assert ConvAttrs(**d) == attrs


class TestActivationCosts:
    def test_all_activations_have_costs(self):
        for op in OpType:
            if is_activation(op):
                assert op in ACTIVATION_COST_FACTORS

    def test_gelu_costlier_than_relu(self):
        assert ACTIVATION_COST_FACTORS[OpType.GELU] > \
            ACTIVATION_COST_FACTORS[OpType.RELU]


def test_category_order_is_complete_and_stable():
    assert len(CATEGORY_ORDER) == len(OpCategory)
    assert len(set(CATEGORY_ORDER)) == len(CATEGORY_ORDER)
    assert CATEGORY_ORDER[0] is OpCategory.CONV
