"""Cross-cutting property-based tests tying the layers together."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.clustering import cluster_power_blocks
from repro.core.features import DepthwiseFeatureExtractor
from repro.core.power_view import PowerView
from repro.governors.preset import FrequencyPlan, PlanStep
from repro.hw import jetson_tx2
from repro.hw.analytic import AnalyticEvaluator
from repro.models import RandomDNNGenerator

_TX2 = jetson_tx2()
_EVALUATOR = AnalyticEvaluator(_TX2)
_EXTRACTOR = DepthwiseFeatureExtractor()


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(0, 5000),
       eps=st.sampled_from([0.3, 0.45, 0.6, 0.75]),
       min_pts=st.sampled_from([2, 4, 8]))
def test_clustering_always_yields_valid_power_view(seed, eps, min_pts):
    """Property: Algorithm 1 output on ANY generated network under ANY
    grid scheme forms a valid power view (contiguous, complete,
    non-overlapping)."""
    graph = RandomDNNGenerator(seed=seed).generate()
    features = _EXTRACTOR.extract_scaled(graph)
    blocks = cluster_power_blocks(features, eps, min_pts)
    view = PowerView.from_blocks(graph, blocks)  # validates internally
    assert view.n_blocks >= 1


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(0, 5000), level=st.integers(0, 12))
def test_analytic_energy_scales_superlinearly_never_sublinearly(
        seed, level):
    """Property: doubling the batch at a fixed level at least doubles
    energy minus the fixed launch overhead (work scales linearly, fixed
    overheads amortize)."""
    graph = RandomDNNGenerator(seed=seed).generate()
    p1 = _EVALUATOR.graph_profile(graph, batch_size=4)
    p2 = _EVALUATOR.graph_profile(graph, batch_size=8)
    assert p2.energies[level] > p1.energies[level] * 1.5
    assert p2.times[level] > p1.times[level]


@settings(max_examples=20, deadline=None)
@given(data=st.data())
def test_frequency_plan_level_map_consistent(data):
    """Property: level_for_op agrees with the plan's step list, and the
    switch indices are exactly where the mapped level changes."""
    n_steps = data.draw(st.integers(1, 6))
    indices = sorted(data.draw(st.sets(
        st.integers(1, 40), min_size=n_steps - 1,
        max_size=n_steps - 1)))
    levels = data.draw(st.lists(st.integers(0, 12), min_size=n_steps,
                                max_size=n_steps))
    steps = [PlanStep(0, levels[0])] + [
        PlanStep(op, lvl) for op, lvl in zip(indices, levels[1:])
    ]
    plan = FrequencyPlan(graph_name="g", steps=steps)
    mapped = [plan.level_for_op(i) for i in range(45)]
    switch_at = [0] + [
        i for i in range(1, 45) if mapped[i] != mapped[i - 1]
    ]
    assert plan.switch_indices() == switch_at


@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(0, 2000))
def test_best_level_feasibility_on_random_networks(seed):
    """Property: the exhaustive sweep's chosen level always honours the
    latency-slack constraint on arbitrary networks."""
    graph = RandomDNNGenerator(seed=seed).generate()
    profile = _EVALUATOR.graph_profile(graph, batch_size=8)
    for slack in (0.0, 0.25):
        level = _EVALUATOR.best_level(profile, latency_slack=slack)
        assert profile.times[level] <= \
            (1 + slack) * profile.times[-1] * (1 + 1e-9)


@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(0, 2000))
def test_depthwise_features_finite_on_random_networks(seed):
    """Property: the feature extractors never emit NaN/inf on generator
    output (log/std guards hold for every op combination)."""
    graph = RandomDNNGenerator(seed=seed).generate()
    x = _EXTRACTOR.extract_scaled(graph)
    assert np.all(np.isfinite(x))
    from repro.core.features import GlobalFeatureExtractor
    gf = GlobalFeatureExtractor().extract(graph)
    assert np.all(np.isfinite(gf.vector))
