"""CLI observability integration: ``--trace``/``--metrics`` on a real
(tiny) experiment run, the ``powerlens trace`` replay command, and the
output byte-identity guarantee with observability on vs. off."""

import json

import pytest

from repro.cli import main
from repro.experiments import common
from repro.obs import read_trace, span_tree, summarize_trace
from repro.obs.metrics import MetricsRegistry, parse_prometheus_text

pytestmark = pytest.mark.obs

_ARGS = ["table1", "--networks", "6", "--no-cache", "--runs", "1",
         "--models", "alexnet"]


@pytest.fixture(autouse=True)
def _fresh_context_cache(monkeypatch):
    """Each test fits its own tiny context (so fit-time spans land in
    the test's own trace, not a session-cached one)."""
    monkeypatch.setattr(common, "_CONTEXT_CACHE", {})


def test_traced_run_emits_valid_jsonl_and_metrics(tmp_path, capsys):
    trace_path = tmp_path / "run.jsonl"
    prom_path = tmp_path / "run.prom"
    code = main(_ARGS + ["--trace", str(trace_path),
                         "--metrics", str(prom_path)])
    assert code == 0
    assert "Table 1" in capsys.readouterr().out

    # Every line of the trace file is one valid JSON object.
    lines = trace_path.read_text().splitlines()
    records = [json.loads(line) for line in lines]
    assert records[0]["type"] == "meta"
    assert records[-1]["type"] == "metrics"

    trace = read_trace(trace_path)
    assert trace.malformed_lines == 0
    names = {rec["name"] for rec in trace.spans}
    # The span tree covers the offline pipeline end to end.
    assert {"fit", "generate", "label_network", "distance", "cluster",
            "evaluate", "train", "analyze"} <= names
    roots = {node.name for node in span_tree(trace.spans)}
    assert "fit" in roots and "analyze" in roots

    # The metrics snapshot round-trips through both exporters.
    snapshot = trace.metrics
    assert snapshot is not None
    assert MetricsRegistry.from_json(snapshot.to_json()).to_dict() == \
        snapshot.to_dict()
    reparsed = parse_prometheus_text(prom_path.read_text())
    assert reparsed.counter(
        "powerlens_networks_labeled_total").value == 6
    assert reparsed.get("powerlens_dvfs_switch_stall_seconds").count > 0
    # The standalone .prom file is the same snapshot the trace carries.
    assert reparsed.to_prometheus_text() == snapshot.to_prometheus_text()


def test_trace_subcommand_summarizes(tmp_path, capsys):
    trace_path = tmp_path / "run.jsonl"
    assert main(_ARGS + ["--trace", str(trace_path)]) == 0
    capsys.readouterr()
    assert main(["trace", str(trace_path)]) == 0
    out = capsys.readouterr().out
    assert "span(s)" in out
    assert "span tree:" in out
    assert "label_network" in out
    # Same renderer the library exposes.
    assert out.strip() == summarize_trace(read_trace(trace_path)).strip()


def test_cli_output_byte_identical_with_and_without_trace(tmp_path,
                                                          monkeypatch,
                                                          capsys):
    """--trace/--metrics are observe-only: the printed table must not
    change by a byte."""
    assert main(list(_ARGS)) == 0
    plain = capsys.readouterr().out
    monkeypatch.setattr(common, "_CONTEXT_CACHE", {})
    assert main(_ARGS + ["--trace", str(tmp_path / "t.jsonl"),
                         "--metrics", str(tmp_path / "t.prom")]) == 0
    traced = capsys.readouterr().out
    assert traced == plain
