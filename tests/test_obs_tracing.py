"""Tracer unit tests: nesting, attributes, bounded buffer, aggregates,
clock injection, the disabled no-op contract, JSONL export, and the
replay/summary path behind ``powerlens trace``."""

import json

import pytest

from repro.obs import (
    NULL_OBS,
    NULL_TRACER,
    Observability,
    Tracer,
    read_trace,
    span_tree,
    summarize_trace,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import _NULL_SPAN

pytestmark = pytest.mark.obs


class FakeClock:
    """Deterministic monotonic clock: each read advances by ``step``."""

    def __init__(self, step: float = 1.0) -> None:
        self.t = 0.0
        self.step = step
        self.reads = 0

    def __call__(self) -> float:
        self.reads += 1
        self.t += self.step
        return self.t


class TestSpans:
    def test_nesting_builds_parent_links(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
            with tracer.span("sibling") as sibling:
                pass
        assert inner.parent_id == outer.span_id
        assert sibling.parent_id == outer.span_id
        assert outer.parent_id is None
        # Completion order: inner spans finish first.
        assert [s.name for s in tracer.spans] == \
            ["inner", "sibling", "outer"]

    def test_attributes_at_open_and_via_set(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("work", scheme=3) as sp:
            sp.set(n_blocks=7).set(n_blocks=9, extra="x")
        record = tracer.spans[0].to_record()
        assert record["attrs"] == {"scheme": 3, "n_blocks": 9,
                                   "extra": "x"}

    def test_clock_injection_pins_durations(self):
        clock = FakeClock(step=0.5)
        tracer = Tracer(clock=clock)
        with tracer.span("a"):
            pass
        span = tracer.spans[0]
        assert span.t_start == 0.5
        assert span.t_end == 1.0
        assert span.duration == pytest.approx(0.5)

    def test_exception_sets_error_attribute_and_propagates(self):
        tracer = Tracer(clock=FakeClock())
        with pytest.raises(RuntimeError):
            with tracer.span("boom"):
                raise RuntimeError("kaput")
        span = tracer.spans[0]
        assert "kaput" in span.attributes["error"]

    def test_misnested_exit_recovers_stack(self):
        tracer = Tracer(clock=FakeClock())
        outer = tracer.span("outer")
        inner = tracer.span("inner")
        # Exit out of order: outer first.
        outer.__exit__(None, None, None)
        inner.__exit__(None, None, None)
        with tracer.span("after") as after:
            pass
        assert after.parent_id is None  # stack fully unwound

    def test_record_external_duration(self):
        tracer = Tracer(clock=FakeClock())
        tracer.record("io", 2.5, path="/x")
        span = tracer.spans[0]
        assert span.duration == pytest.approx(2.5)
        assert span.attributes == {"path": "/x"}
        assert tracer.total("io") == pytest.approx(2.5)
        with pytest.raises(ValueError):
            tracer.record("io", -1.0)


class TestBufferAndAggregates:
    def test_buffer_bound_drops_new_spans_but_keeps_aggregates(self):
        tracer = Tracer(max_spans=2, clock=FakeClock())
        for _ in range(5):
            with tracer.span("hot"):
                pass
        assert len(tracer.spans) == 2
        assert tracer.dropped == 3
        assert tracer.count("hot") == 5
        assert tracer.total("hot") == pytest.approx(5.0)
        assert tracer.mean("hot") == pytest.approx(1.0)

    def test_keep_spans_false_is_aggregate_only(self):
        tracer = Tracer(keep_spans=False, clock=FakeClock())
        with tracer.span("x"):
            pass
        assert tracer.spans == []
        assert tracer.dropped == 1
        assert tracer.count("x") == 1

    def test_clear_resets_buffer_and_aggregates(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("a"):
            pass
        tracer.clear()
        assert tracer.spans == []
        assert tracer.names() == []
        assert tracer.total("a") == 0.0


class TestDisabledTracer:
    def test_disabled_span_is_shared_null_handle(self):
        clock = FakeClock()
        tracer = Tracer(enabled=False, clock=clock)
        handle = tracer.span("anything", attr=1)
        assert handle is _NULL_SPAN
        assert handle is NULL_TRACER.span("other")
        with handle as sp:
            assert sp.set(x=1) is sp
        # The disabled path must never read the clock.
        assert clock.reads == 0
        assert tracer.spans == []

    def test_disabled_record_is_noop(self):
        tracer = Tracer(enabled=False)
        tracer.record("x", 1.0)
        assert tracer.names() == []

    def test_null_obs_bundle_is_disabled(self):
        assert not NULL_OBS.enabled
        assert NULL_OBS.tracer is NULL_TRACER
        assert Observability.enabled_bundle().enabled


class TestExportAndReplay:
    def test_jsonl_round_trip(self, tmp_path):
        tracer = Tracer(clock=FakeClock())
        metrics = MetricsRegistry()
        metrics.counter("powerlens_things_total").inc(3)
        with tracer.span("root", label="r"):
            with tracer.span("child"):
                pass
        path = tracer.export_jsonl(tmp_path / "t.jsonl", metrics=metrics)
        lines = path.read_text().splitlines()
        for line in lines:
            json.loads(line)  # every line is valid JSON
        trace = read_trace(path)
        assert trace.malformed_lines == 0
        assert trace.meta["dropped"] == 0
        assert [s["name"] for s in trace.spans] == ["child", "root"]
        assert trace.metrics.counter("powerlens_things_total").value == 3

        roots = span_tree(trace.spans)
        assert [r.name for r in roots] == ["root"]
        assert [c.name for c in roots[0].children] == ["child"]

    def test_read_trace_tolerates_garbage(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        good = json.dumps({"type": "span", "span_id": 1,
                           "parent_id": None, "name": "ok",
                           "t_start": 0.0, "t_end": 1.0})
        path.write_text("\n".join([
            "not json at all", good,
            json.dumps({"type": "span", "name": "missing-keys"}),
            json.dumps({"type": "wat"}), "",
        ]) + "\n")
        trace = read_trace(path)
        assert [s["name"] for s in trace.spans] == ["ok"]
        assert trace.malformed_lines == 3

    def test_orphan_spans_become_roots(self):
        spans = [
            {"span_id": 5, "parent_id": 99, "name": "orphan",
             "t_start": 0.0, "t_end": 1.0},
            {"span_id": 6, "parent_id": 5, "name": "kid",
             "t_start": 0.2, "t_end": 0.8},
        ]
        roots = span_tree(spans)
        assert [r.name for r in roots] == ["orphan"]
        assert [c.name for c in roots[0].children] == ["kid"]

    def test_summarize_trace_renders_tree_and_metrics(self, tmp_path):
        tracer = Tracer(clock=FakeClock())
        metrics = MetricsRegistry()
        metrics.counter("powerlens_hits_total").inc(2)
        metrics.histogram("powerlens_lat_seconds").observe(0.01)
        with tracer.span("fit"):
            with tracer.span("generate", n=4):
                pass
        path = tracer.export_jsonl(tmp_path / "t.jsonl", metrics=metrics)
        text = summarize_trace(read_trace(path))
        assert "2 span(s)" in text
        assert "fit" in text and "generate" in text
        assert "n=4" in text
        assert "powerlens_hits_total" in text
        assert "powerlens_lat_seconds" in text

    def test_summary_reports_dropped_spans(self, tmp_path):
        tracer = Tracer(max_spans=1, clock=FakeClock())
        for _ in range(3):
            with tracer.span("s"):
                pass
        path = tracer.export_jsonl(tmp_path / "t.jsonl")
        text = summarize_trace(read_trace(path))
        assert "2 dropped at capture" in text
