"""Thermal model tests: RC dynamics, leakage coupling, throttling."""

import pytest

from repro.governors import StaticGovernor
from repro.hw import InferenceJob, InferenceSimulator
from repro.hw.thermal import ThermalConfig, ThermalState
from repro.models import build_model


class TestThermalState:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            ThermalConfig(r_th=0.0)
        with pytest.raises(ValueError):
            ThermalConfig(t_release=90.0, t_throttle=85.0)

    def test_heats_toward_steady_state(self):
        cfg = ThermalConfig(r_th=2.0, c_th=5.0)
        state = ThermalState.initial(cfg)
        for _ in range(1000):
            state.advance(20.0, 0.1)
        # Steady state: 25 + 20 W * 2 K/W = 65 C.
        assert state.temperature == pytest.approx(65.0, abs=0.5)

    def test_cools_when_idle(self):
        cfg = ThermalConfig()
        state = ThermalState.initial(cfg)
        state.temperature = 80.0
        state.advance(0.0, 1000.0)
        assert state.temperature == pytest.approx(cfg.t_ambient, abs=0.5)

    def test_exact_exponential_step_stable(self):
        """Large dt must not overshoot (the exact solution is used, not
        forward Euler)."""
        cfg = ThermalConfig(r_th=1.0, c_th=1.0)
        state = ThermalState.initial(cfg)
        state.advance(50.0, 1e6)
        assert state.temperature == pytest.approx(25.0 + 50.0, abs=1e-6)

    def test_leakage_multiplier_grows(self):
        cfg = ThermalConfig(leak_temp_coeff=0.01, t_ref=25.0)
        state = ThermalState.initial(cfg)
        assert state.leakage_multiplier() == pytest.approx(1.0)
        state.temperature = 75.0
        assert state.leakage_multiplier() == pytest.approx(1.5)

    def test_throttle_hysteresis(self):
        cfg = ThermalConfig(t_throttle=85.0, t_release=75.0)
        state = ThermalState.initial(cfg)
        state.temperature = 86.0
        assert state.update_throttle()
        state.temperature = 80.0   # between release and throttle
        assert state.update_throttle()  # still engaged
        state.temperature = 74.0
        assert not state.update_throttle()

    def test_peak_tracked(self):
        state = ThermalState.initial(ThermalConfig())
        state.advance(100.0, 10.0)
        hot = state.temperature
        state.advance(0.0, 1000.0)
        assert state.peak_temperature == pytest.approx(hot)


class TestSimulatorIntegration:
    @pytest.fixture(scope="class")
    def graph(self):
        return build_model("resnet34")

    def test_temperature_rises_under_load(self, tx2, graph):
        hot = ThermalConfig(r_th=4.0, c_th=1.0)
        sim = InferenceSimulator(tx2, thermal=hot, keep_trace=False)
        job = InferenceJob(graph=graph, batch_size=16, n_batches=4)
        r = sim.run([job], StaticGovernor())
        assert r.peak_temperature > hot.t_ambient + 5.0

    def test_lower_frequency_runs_cooler(self, tx2, graph):
        hot = ThermalConfig(r_th=4.0, c_th=1.0)
        job = InferenceJob(graph=graph, batch_size=16, n_batches=4)
        r_max = InferenceSimulator(tx2, thermal=hot,
                                   keep_trace=False).run(
            [job], StaticGovernor())
        r_mid = InferenceSimulator(tx2, thermal=hot,
                                   keep_trace=False).run(
            [job], StaticGovernor(level=5))
        assert r_mid.peak_temperature < r_max.peak_temperature

    def test_throttle_engages_on_hot_platform(self, tx2, graph):
        furnace = ThermalConfig(r_th=8.0, c_th=0.4, t_throttle=55.0,
                                t_release=56.0 - 8.0, throttle_level=2)
        sim = InferenceSimulator(tx2, thermal=furnace, keep_trace=True)
        job = InferenceJob(graph=graph, batch_size=16, n_batches=6,
                           cpu_work_per_image=0.0)
        r = sim.run([job], StaticGovernor())
        assert r.throttle_time > 0
        # Throttling actually lowered the level at some point.
        levels = {s.gpu_level for s in r.trace.segments}
        assert min(levels) <= 2

    def test_thermal_off_by_default(self, tx2, graph):
        sim = InferenceSimulator(tx2, keep_trace=False)
        job = InferenceJob(graph=graph, batch_size=8, n_batches=1)
        r = sim.run([job], StaticGovernor())
        assert r.peak_temperature == 0.0
        assert r.throttle_time == 0.0

    def test_leakage_raises_energy_when_hot(self, tx2, graph):
        job = InferenceJob(graph=graph, batch_size=16, n_batches=4,
                           cpu_work_per_image=0.0)
        cold = InferenceSimulator(tx2, keep_trace=False).run(
            [job], StaticGovernor())
        hot_cfg = ThermalConfig(r_th=6.0, c_th=0.5, t_throttle=500.0,
                                t_release=499.0,
                                leak_temp_coeff=0.02)
        hot = InferenceSimulator(tx2, thermal=hot_cfg,
                                 keep_trace=False).run(
            [job], StaticGovernor())
        assert hot.report.total_energy > cold.report.total_energy
