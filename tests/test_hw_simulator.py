"""Discrete-event simulator tests."""

import pytest

from repro.governors import (
    FrequencyPlan,
    OndemandGovernor,
    PlanStep,
    PresetGovernor,
    StaticGovernor,
)
from repro.hw import InferenceJob, InferenceSimulator
from repro.hw.analytic import AnalyticEvaluator
from repro.hw.telemetry import KIND_GPU_OP


@pytest.fixture()
def sim(tx2):
    return InferenceSimulator(tx2, sample_period=0.01)


@pytest.fixture()
def job(small_cnn):
    return InferenceJob(graph=small_cnn, batch_size=8, n_batches=2,
                        cpu_work_per_image=1e7)


class TestBasics:
    def test_invalid_sample_period(self, tx2):
        with pytest.raises(ValueError):
            InferenceSimulator(tx2, sample_period=0.0)

    def test_result_accounting(self, sim, job):
        r = sim.run([job], StaticGovernor())
        assert r.report.images == job.images
        assert r.report.total_time > 0
        assert r.report.total_energy > 0
        assert r.report.total_energy == pytest.approx(
            r.trace.total_energy)
        assert r.switch_count == 0

    def test_energy_integral_consistency(self, sim, job):
        """Sum of segment energies equals the trace accumulators."""
        r = sim.run([job], StaticGovernor())
        seg_total = sum(s.energy for s in r.trace.segments)
        assert seg_total == pytest.approx(r.trace.total_energy, rel=1e-9)

    def test_segments_contiguous_in_time(self, sim, job):
        r = sim.run([job], StaticGovernor())
        segs = r.trace.segments
        for a, b in zip(segs, segs[1:]):
            assert b.t_start == pytest.approx(a.t_end)

    def test_every_op_executes(self, sim, job, small_cnn):
        r = sim.run([job], StaticGovernor())
        ops = {s.label for s in r.trace.segments if s.kind == KIND_GPU_OP}
        expected = {n.name for n in small_cnn.compute_nodes()}
        assert ops == expected

    def test_per_job_reports(self, sim, job):
        r = sim.run([job, job], StaticGovernor())
        assert len(r.per_job) == 2
        total = sum(j.total_energy for j in r.per_job)
        assert total == pytest.approx(r.report.total_energy, rel=1e-6)


class TestFrequencyBehaviour:
    def test_lower_level_slower_but_cheaper(self, sim, small_cnn):
        job = InferenceJob(graph=small_cnn, batch_size=8, n_batches=2,
                           cpu_work_per_image=0.0)
        fast = sim.run([job], StaticGovernor(level=None))
        mid = sim.run([job], StaticGovernor(level=5))
        assert mid.report.total_time > fast.report.total_time
        assert mid.report.total_energy < fast.report.total_energy

    def test_matches_analytic_model(self, tx2, small_cnn):
        """Event simulation at a pinned level must agree with the
        closed-form evaluator (same physics, different machinery)."""
        sim = InferenceSimulator(tx2, sample_period=10.0)  # no sampling
        job = InferenceJob(graph=small_cnn, batch_size=8, n_batches=1,
                           cpu_work_per_image=0.0)
        level = 6
        r = sim.run([job], StaticGovernor(level=level))
        ev = AnalyticEvaluator(tx2)
        profile = ev.graph_profile(small_cnn, batch_size=8)
        gpu_busy_time = r.trace.busy_gpu_time
        assert gpu_busy_time == pytest.approx(float(profile.times[level]),
                                              rel=1e-6)

    def test_noise_changes_duration_deterministically(self, tx2, job):
        a = InferenceSimulator(tx2, noise_std=0.05, seed=1).run(
            [job], StaticGovernor())
        b = InferenceSimulator(tx2, noise_std=0.05, seed=1).run(
            [job], StaticGovernor())
        c = InferenceSimulator(tx2, noise_std=0.05, seed=2).run(
            [job], StaticGovernor())
        assert a.report.total_time == pytest.approx(b.report.total_time)
        assert a.report.total_time != pytest.approx(c.report.total_time)


class TestPresetExecution:
    def test_plan_levels_applied(self, tx2, small_cnn):
        n_ops = len(small_cnn.compute_nodes())
        plan = FrequencyPlan(graph_name=small_cnn.name, steps=[
            PlanStep(0, 2), PlanStep(n_ops // 2, 9),
        ])
        sim = InferenceSimulator(tx2, sample_period=10.0)
        job = InferenceJob(graph=small_cnn, batch_size=8, n_batches=1,
                           cpu_work_per_image=0.0)
        r = sim.run([job], PresetGovernor([plan]))
        levels = {s.label: s.gpu_level for s in r.trace.segments
                  if s.kind == KIND_GPU_OP}
        compute = small_cnn.compute_nodes()
        assert levels[compute[0].name] == 2
        assert levels[compute[-1].name] == 9
        assert r.switch_count == 2  # initial max->2, then 2->9

    def test_unplanned_graph_runs_at_fallback(self, tx2, small_cnn):
        plan = FrequencyPlan(graph_name="other", steps=[PlanStep(0, 3)])
        sim = InferenceSimulator(tx2, sample_period=10.0)
        job = InferenceJob(graph=small_cnn, batch_size=4)
        r = sim.run([job], PresetGovernor([plan], fallback_level=7))
        op_levels = {s.gpu_level for s in r.trace.segments
                     if s.kind == KIND_GPU_OP}
        assert op_levels == {7}

    def test_switch_stall_charged(self, tx2, small_cnn):
        n_ops = len(small_cnn.compute_nodes())
        steps = [PlanStep(i, i % 2 * 5) for i in range(n_ops)]
        plan = FrequencyPlan(graph_name=small_cnn.name, steps=steps)
        sim = InferenceSimulator(tx2, sample_period=10.0)
        job = InferenceJob(graph=small_cnn, batch_size=4,
                           cpu_work_per_image=0.0)
        r = sim.run([job], PresetGovernor([plan]))
        switch_time = sum(s.duration for s in r.trace.segments
                          if s.kind == "switch")
        assert r.switch_count >= n_ops - 1
        assert switch_time == pytest.approx(
            r.switch_count * tx2.dvfs_stall_s, rel=1e-6)


class TestCpuSide:
    def test_cpu_phase_present(self, sim, job):
        r = sim.run([job], StaticGovernor())
        cpu_time = sum(s.duration for s in r.trace.segments
                       if s.kind == "cpu")
        assert cpu_time > 0

    def test_efficient_policy_lowers_cpu_power(self, tx2, small_cnn):
        job = InferenceJob(graph=small_cnn, batch_size=8, n_batches=3,
                           cpu_work_per_image=5e7)
        g_ond = StaticGovernor(cpu_policy="ondemand")
        g_eff = StaticGovernor(cpu_policy="efficient")
        r_ond = InferenceSimulator(tx2).run([job], g_ond)
        r_eff = InferenceSimulator(tx2).run([job], g_eff)
        assert r_eff.trace.cpu_energy < r_ond.trace.cpu_energy

    def test_max_policy(self, tx2, small_cnn):
        job = InferenceJob(graph=small_cnn, batch_size=4,
                           cpu_work_per_image=5e7)
        gov = StaticGovernor(cpu_policy="max")
        r = InferenceSimulator(tx2).run([job], gov)
        assert r.report.total_energy > 0


class TestJobDataclass:
    def test_images(self, small_cnn):
        job = InferenceJob(graph=small_cnn, batch_size=10, n_batches=5)
        assert job.images == 50

    def test_label_defaults_to_graph_name(self, small_cnn):
        assert InferenceJob(graph=small_cnn).label() == small_cnn.name
        assert InferenceJob(graph=small_cnn, name="x").label() == "x"
