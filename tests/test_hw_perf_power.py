"""Latency and power model tests."""

import pytest
from hypothesis import given, strategies as st

from repro.hw.perf import LatencyModel, OpWork
from repro.hw.power import PowerModel


@pytest.fixture()
def latency(tx2):
    return LatencyModel(tx2)


@pytest.fixture()
def power(tx2):
    return PowerModel(tx2)


def _compute_heavy():
    # Very high arithmetic intensity: compute-bound at any frequency.
    return OpWork("conv_heavy", "conv", flops=1e10, mem_bytes=1e5)


def _memory_heavy():
    return OpWork("eltwise", "elementwise", flops=1e5, mem_bytes=1e8)


class TestRoofline:
    def test_compute_bound_scales_with_freq(self, tx2):
        # Disable the streaming-traffic floor so the op is purely
        # compute-bound, then time must scale inversely with frequency.
        plat = tx2.with_overrides(
            intensity_caps={k: 0.0 for k in tx2.intensity_caps})
        latency = LatencyModel(plat)
        w = _compute_heavy()
        t_lo = latency.time_at_level(w, 0).duration
        t_hi = latency.time_at_level(w, plat.max_level).duration
        assert t_lo > t_hi
        # Roughly inverse-proportional (launch overhead aside).
        assert t_lo / t_hi == pytest.approx(plat.f_max / plat.f_min,
                                            rel=0.05)

    def test_memory_bound_barely_scales(self, latency, tx2):
        w = _memory_heavy()
        t_lo = latency.time_at_level(w, 0).duration
        t_hi = latency.time_at_level(w, tx2.max_level).duration
        # Bandwidth sensitivity bounds the slowdown.
        max_ratio = 1.0 / (1.0 - tx2.bw_freq_sensitivity)
        assert t_lo / t_hi < max_ratio + 0.05

    def test_boundness_classification(self, latency, tx2):
        # Under the achieved-traffic model even dense convolutions are
        # memory-bound at the top of the ladder (the calibrated Jetson
        # behaviour); at the bottom they are compute-bound.
        t_c_low = latency.time_at_level(_compute_heavy(), 0)
        t_m = latency.time_at_level(_memory_heavy(), tx2.max_level)
        assert t_c_low.compute_bound
        assert not t_m.compute_bound

    def test_utilizations_in_unit_interval(self, latency, tx2):
        for work in (_compute_heavy(), _memory_heavy()):
            t = latency.time_at_level(work, 5)
            assert 0.0 <= t.compute_utilization <= 1.0
            assert 0.0 <= t.memory_utilization <= 1.0

    def test_batch_scales_linearly(self, latency, tx2):
        w = _compute_heavy()
        t1 = latency.time_at_level(w, 5, batch_size=1).duration
        t8 = latency.time_at_level(w, 5, batch_size=8).duration
        assert t8 == pytest.approx(
            8 * (t1 - tx2.kernel_launch_s) + tx2.kernel_launch_s)

    def test_launch_overhead_floor(self, latency, tx2):
        w = OpWork("tiny", "reshape", flops=0.0, mem_bytes=1.0)
        t = latency.time_at_level(w, tx2.max_level)
        assert t.duration >= tx2.kernel_launch_s

    def test_effective_bytes_at_least_amplified_analytic(self, latency,
                                                         tx2):
        w = _memory_heavy()
        amp = tx2.traffic_amplification["elementwise"]
        assert latency.effective_bytes(w) >= amp * w.mem_bytes

    def test_effective_bytes_streaming_floor(self, latency, tx2):
        w = _compute_heavy()
        cap = tx2.intensity_caps["conv"]
        assert latency.effective_bytes(w) >= w.flops / cap

    def test_graph_time_monotone_in_level(self, latency, small_cnn, tx2):
        times = [latency.graph_time(small_cnn, lvl, batch_size=8)
                 for lvl in range(tx2.n_levels)]
        assert all(a >= b - 1e-12 for a, b in zip(times, times[1:]))

    def test_work_cache_guards_identity(self, latency, small_cnn):
        works1 = latency.graph_work(small_cnn)
        works2 = latency.graph_work(small_cnn)
        assert works1 is works2

    def test_cpu_time(self, latency, tx2):
        t = latency.cpu_time(1e9, tx2.cpu.f_max)
        assert t == pytest.approx(1e9 / (tx2.cpu.ops_per_cycle
                                         * tx2.cpu.f_max))


class TestPower:
    def test_busy_exceeds_idle(self, latency, power, tx2):
        for work in (_compute_heavy(), _memory_heavy()):
            t = latency.time_at_level(work, 8)
            f = tx2.freq_of_level(8)
            assert power.gpu_busy(f, t) > power.gpu_idle(f)

    def test_busy_power_increases_with_freq(self, latency, power, tx2):
        w = _compute_heavy()
        prev = 0.0
        for lvl in range(tx2.n_levels):
            f = tx2.freq_of_level(lvl)
            p = power.gpu_busy(f, latency.time_at_level(w, lvl))
            assert p > prev
            prev = p

    def test_compute_bound_burns_more_than_memory_bound(
            self, latency, power, tx2):
        f = tx2.f_max
        p_c = power.gpu_busy(f, latency.time_at_level(_compute_heavy(),
                                                      tx2.max_level))
        t_m = latency.time_at_level(_memory_heavy(), tx2.max_level)
        # Remove the DRAM component for a fair stall-power comparison.
        p_m_stall = power.gpu_static(f) + \
            tx2.c_eff * f * tx2.voltage(f) ** 2 * (
                t_m.compute_utilization
                + tx2.stall_power_fraction * (1 - t_m.compute_utilization))
        assert p_c > p_m_stall

    def test_stalled_sm_power_fraction(self, power, latency, tx2):
        """A fully memory-stalled op still burns a large dynamic
        fraction — the physical core of the DVFS opportunity."""
        f = tx2.f_max
        t_m = latency.time_at_level(_memory_heavy(), tx2.max_level)
        dyn_full = tx2.c_eff * f * tx2.voltage(f) ** 2
        p = power.gpu_busy(f, t_m)
        dram = tx2.dram_energy_per_byte * t_m.effective_bytes / \
            t_m.duration
        stall_dyn = p - power.gpu_static(f) - dram
        assert stall_dyn >= 0.9 * tx2.stall_power_fraction * dyn_full

    def test_op_energy_is_power_times_time(self, latency, power, tx2):
        w = _compute_heavy()
        t = latency.time_at_level(w, 5)
        f = tx2.freq_of_level(5)
        assert power.op_energy(f, t) == \
            pytest.approx(power.gpu_busy(f, t) * t.duration)

    def test_cpu_busy_exceeds_idle(self, power, tx2):
        for f in tx2.cpu.freq_levels:
            assert power.cpu_busy(f) > power.cpu_idle(f)

    def test_cpu_idle_leakage_floor_constant(self, power, tx2):
        """Idle cores clock-gate: leakage does not track the pinned
        level, only the small residual clock component does."""
        lo = power.cpu_idle(tx2.cpu.f_min)
        hi = power.cpu_idle(tx2.cpu.f_max)
        assert hi - lo < 0.5  # only the residual term differs

    def test_platform_power_breakdown(self, power, tx2):
        b = power.platform_power(5.0, 2.0)
        assert b.total == pytest.approx(5.0 + 2.0 + tx2.board_power)

    @given(level=st.integers(0, 12))
    def test_energy_convexity_exists(self, level, tx2):
        """Property: busy power is positive and finite at every level."""
        latency = LatencyModel(tx2)
        power = PowerModel(tx2)
        f = tx2.freq_of_level(level)
        t = latency.time_at_level(_compute_heavy(), level)
        p = power.gpu_busy(f, t)
        assert 0 < p < 1000
