"""Public API surface tests: the imports the README advertises must all
resolve, and the experiment context cache must behave."""

import importlib

import pytest


@pytest.mark.parametrize("module", [
    "repro",
    "repro.graph",
    "repro.models",
    "repro.hw",
    "repro.governors",
    "repro.nn",
    "repro.core",
    "repro.workloads",
    "repro.experiments",
    "repro.extensions",
    "repro.analysis",
    "repro.cli",
])
def test_module_imports(module):
    importlib.import_module(module)


def test_version():
    import repro
    assert repro.__version__


def test_readme_quickstart_symbols():
    from repro.core import PowerLens, PowerLensConfig
    from repro.hw import InferenceJob, InferenceSimulator, jetson_tx2
    from repro.models import build_model
    assert callable(PowerLens) and callable(build_model)
    assert PowerLensConfig().batch_size == 16
    assert jetson_tx2().n_levels == 13
    _ = InferenceSimulator, InferenceJob


def test_all_exports_resolve():
    """Every name in each package's __all__ must actually exist."""
    for module_name in ("repro.graph", "repro.hw", "repro.governors",
                        "repro.nn", "repro.core", "repro.workloads",
                        "repro.experiments", "repro.extensions",
                        "repro.analysis", "repro.models"):
        module = importlib.import_module(module_name)
        for name in getattr(module, "__all__", []):
            assert hasattr(module, name), f"{module_name}.{name} missing"


def test_context_cache_reuses_fit(monkeypatch):
    """get_context must fit once per (platform, corpus, seed) key."""
    from repro.experiments import common

    calls = []

    class FakeLens:
        def __init__(self, platform, config, obs=None):
            from repro.obs import NULL_OBS
            self.platform = platform
            self.config = config
            self.obs = obs if obs is not None else NULL_OBS

        def fit(self):
            calls.append(1)

    monkeypatch.setattr(common, "PowerLens", FakeLens)
    monkeypatch.setattr(common, "_CONTEXT_CACHE", {})
    a = common.get_context("tx2", n_networks=1, seed=99)
    b = common.get_context("tx2", n_networks=1, seed=99)
    c = common.get_context("tx2", n_networks=2, seed=99)
    assert a is b
    assert a is not c
    assert len(calls) == 2
