"""Ablation variant tests (Table 2's P-R and P-N)."""

import pytest

from repro.core.ablation import (
    no_clustering_plan,
    random_partition,
    random_partition_plan,
)


class TestRandomPartition:
    def test_partition_covers_everything(self):
        groups = random_partition(20, 4, seed=0)
        assert len(groups) == 4
        covered = sorted(i for g in groups for i in g)
        assert covered == list(range(20))

    def test_groups_non_empty(self):
        for seed in range(5):
            groups = random_partition(10, 5, seed=seed)
            assert all(len(g) >= 1 for g in groups)

    def test_more_blocks_than_ops_clamped(self):
        groups = random_partition(3, 10, seed=0)
        assert len(groups) == 3

    def test_invalid_block_count(self):
        with pytest.raises(ValueError):
            random_partition(5, 0)

    def test_deterministic(self):
        assert random_partition(15, 3, seed=7) == \
            random_partition(15, 3, seed=7)

    def test_generally_non_contiguous(self):
        """Random grouping should usually scatter operators — that is
        what makes P-R pay switch costs."""
        groups = random_partition(30, 3, seed=1)
        scattered = any(
            list(g) != list(range(g[0], g[-1] + 1)) for g in groups)
        assert scattered


class TestAblationPlans:
    def test_pn_single_step(self, fitted_lens, small_cnn, tx2):
        plan = no_clustering_plan(fitted_lens, small_cnn)
        assert plan.n_blocks == 1
        assert plan.steps[0].op_index == 0
        assert 0 <= plan.steps[0].level <= tx2.max_level

    def test_pr_plan_valid_and_covers(self, fitted_lens, small_cnn):
        plan = random_partition_plan(fitted_lens, small_cnn, n_blocks=3,
                                     seed=0)
        # Every operator has a defined level.
        n = len(small_cnn.compute_nodes())
        for op in range(n):
            plan.level_for_op(op)
        assert plan.steps[0].op_index == 0

    def test_pr_produces_more_switches_than_powerlens(self, fitted_lens,
                                                      small_cnn):
        pr = random_partition_plan(fitted_lens, small_cnn, n_blocks=4,
                                   seed=3)
        pl = fitted_lens.analyze(small_cnn).plan
        # Random scattering generally needs at least as many retargets.
        assert len(pr.switch_indices()) >= len(pl.switch_indices())

    def test_pr_defaults_to_powerlens_block_count(self, fitted_lens,
                                                  small_cnn):
        pl_blocks = fitted_lens.analyze(small_cnn).n_blocks
        plan = random_partition_plan(fitted_lens, small_cnn, seed=0)
        distinct_groups = pl_blocks
        assert plan.n_blocks >= 1
        # Group count bounded by op count either way.
        assert plan.n_blocks <= len(small_cnn.compute_nodes())

    def test_unfitted_lens_rejected(self, tx2, small_cnn):
        from repro.core import PowerLens
        lens = PowerLens(tx2)
        with pytest.raises(RuntimeError):
            no_clustering_plan(lens, small_cnn)
        with pytest.raises(RuntimeError):
            random_partition_plan(lens, small_cnn, n_blocks=2)
