"""Graph container and builder tests."""

import pytest

from repro.graph import Graph, GraphBuilder, GraphError
from repro.graph.graph import Node
from repro.graph.ops import InputAttrs, OpAttrs, OpType


def _node(name, op=OpType.RELU, inputs=(), attrs=None):
    from repro.graph.ops import attrs_class_for
    if attrs is None:
        attrs = attrs_class_for(op)() if op is not OpType.INPUT \
            else InputAttrs((4,))
    return Node(name=name, op=op, attrs=attrs, inputs=tuple(inputs),
                output_shape=(4,))


class TestGraphStructure:
    def test_duplicate_name_rejected(self):
        g = Graph("g")
        g.add_node(_node("a", OpType.INPUT))
        with pytest.raises(GraphError, match="duplicate"):
            g.add_node(_node("a", OpType.INPUT))

    def test_unknown_input_rejected(self):
        g = Graph("g")
        with pytest.raises(GraphError, match="unknown input"):
            g.add_node(_node("b", inputs=("missing",)))

    def test_getitem_missing(self):
        g = Graph("g")
        with pytest.raises(GraphError, match="no such node"):
            g["nope"]

    def test_consumers_and_producers(self):
        g = Graph("g")
        g.add_node(_node("x", OpType.INPUT))
        g.add_node(_node("a", inputs=("x",)))
        g.add_node(_node("b", inputs=("x",)))
        g.add_node(_node("c", OpType.ADD, inputs=("a", "b")))
        assert sorted(g.consumers("x")) == ["a", "b"]
        assert g.producers("c") == ["a", "b"]
        assert [n.name for n in g.output_nodes] == ["c"]

    def test_len_and_contains(self, small_cnn):
        assert len(small_cnn) == len(list(small_cnn.nodes()))
        assert "input_0" in small_cnn
        assert "bogus" not in small_cnn


class TestTopology:
    def test_topological_order_respects_edges(self, small_cnn):
        order = [n.name for n in small_cnn.topological_order()]
        pos = {name: i for i, name in enumerate(order)}
        for node in small_cnn.nodes():
            for src in node.inputs:
                assert pos[src] < pos[node.name]

    def test_compute_nodes_exclude_inputs(self, small_cnn):
        assert all(n.op is not OpType.INPUT
                   for n in small_cnn.compute_nodes())
        assert len(small_cnn.compute_nodes()) == len(small_cnn) - 1

    def test_depth_linear_chain(self):
        b = GraphBuilder("chain")
        x = b.input((4, 8, 8))
        for _ in range(5):
            x = b.relu(x)
        assert b.build().depth() == 5

    def test_depth_takes_longest_path(self, small_cnn):
        # Residual shortcut is shorter than the main path.
        assert small_cnn.depth() >= 8

    def test_branching_stats(self, small_cnn):
        branches, merges = small_cnn.branching_stats()
        assert branches >= 1  # the residual fork
        assert merges >= 1    # the add

    def test_residual_count(self, small_cnn):
        assert small_cnn.residual_count() == 1

    def test_topo_cache_invalidated_on_add(self):
        b = GraphBuilder("g")
        x = b.input((4,))
        g = b.graph
        n1 = len(g.topological_order())
        b.relu(x)
        assert len(g.topological_order()) == n1 + 1


class TestBuilder:
    def test_auto_names_unique(self):
        b = GraphBuilder("g")
        x = b.input((4, 8, 8))
        a = b.relu(x)
        c = b.relu(a)
        assert a != c

    def test_explicit_name(self):
        b = GraphBuilder("g")
        x = b.input((4, 8, 8), name="img")
        assert x == "img"

    def test_shape_accessor(self):
        b = GraphBuilder("g")
        x = b.input((3, 32, 32))
        y = b.conv(x, 8, kernel=3, padding=1, name="c")
        assert b.shape(y) == (8, 32, 32)

    def test_conv_bn_act_block(self):
        b = GraphBuilder("g")
        x = b.input((3, 32, 32))
        b.conv_bn_act(x, 8, kernel=3, padding=1)
        ops = [n.op for n in b.build().compute_nodes()]
        assert ops == [OpType.CONV2D, OpType.BATCHNORM2D, OpType.RELU]

    def test_squeeze_excite_shape_preserved(self):
        b = GraphBuilder("g")
        x = b.input((3, 32, 32))
        x = b.conv(x, 16, kernel=3, padding=1)
        y = b.squeeze_excite(x, 4)
        assert b.shape(y) == (16, 32, 32)

    def test_subgraph_nodes(self, small_cnn):
        compute = small_cnn.compute_nodes()
        picked = small_cnn.subgraph_nodes([0, 2])
        assert picked == [compute[0], compute[2]]
