"""Feature extraction tests (section 2.1.2)."""

import numpy as np
import pytest

from repro.core.features import (
    DEPTHWISE_FEATURE_NAMES,
    STATISTICS_FEATURE_NAMES,
    STRUCTURAL_FEATURE_NAMES,
    DepthwiseFeatureExtractor,
    GlobalFeatureExtractor,
)
from repro.models import build_model


@pytest.fixture(scope="module")
def resnet34():
    return build_model("resnet34")


class TestDepthwise:
    def test_matrix_shape(self, small_cnn):
        ext = DepthwiseFeatureExtractor()
        x = ext.extract(small_cnn)
        assert x.shape == (len(small_cnn.compute_nodes()),
                           len(DEPTHWISE_FEATURE_NAMES))

    def test_feature_names_match_width(self):
        ext = DepthwiseFeatureExtractor()
        assert ext.n_features == len(DEPTHWISE_FEATURE_NAMES)

    def test_onehot_exactly_one_category(self, small_cnn):
        ext = DepthwiseFeatureExtractor()
        x = ext.extract(small_cnn)
        cat_start = DEPTHWISE_FEATURE_NAMES.index("cat_conv")
        cat_cols = x[:, cat_start:cat_start + 10]
        assert np.all(cat_cols.sum(axis=1) == 1.0)

    def test_conv_has_kernel_features(self, small_cnn):
        ext = DepthwiseFeatureExtractor()
        compute = small_cnn.compute_nodes()
        conv = next(n for n in compute if n.op.value == "conv2d")
        v = ext.extract_node(small_cnn, conv)
        k_idx = DEPTHWISE_FEATURE_NAMES.index("kernel_area")
        assert v[k_idx] == 9.0  # 3x3

    def test_attention_heads_feature(self):
        ext = DepthwiseFeatureExtractor()
        g = build_model("vit_b_32")
        attn = next(n for n in g.compute_nodes()
                    if n.op.value == "attention")
        v = ext.extract_node(g, attn)
        h_idx = DEPTHWISE_FEATURE_NAMES.index("attention_heads")
        assert v[h_idx] == 12.0

    def test_residual_merge_flag(self, small_cnn):
        ext = DepthwiseFeatureExtractor()
        add = next(n for n in small_cnn.compute_nodes()
                   if n.op.value == "add")
        v = ext.extract_node(small_cnn, add)
        idx = DEPTHWISE_FEATURE_NAMES.index("is_residual_merge")
        assert v[idx] == 1.0

    def test_scaled_features_standardized(self, resnet34):
        ext = DepthwiseFeatureExtractor()
        x = ext.extract_scaled(resnet34)
        means = x.mean(axis=0)
        stds = x.std(axis=0)
        assert np.all(np.abs(means) < 1e-9)
        # Non-constant columns have unit std; constant columns zero.
        assert np.all((np.abs(stds - 1) < 1e-9) | (stds < 1e-9))

    def test_empty_graph(self):
        from repro.graph import GraphBuilder
        b = GraphBuilder("empty")
        b.input((3, 8, 8))
        x = DepthwiseFeatureExtractor().extract(b.build())
        assert x.shape[0] == 0

    def test_all_features_finite(self, resnet34):
        x = DepthwiseFeatureExtractor().extract(resnet34)
        assert np.all(np.isfinite(x))


class TestGlobal:
    def test_dims_match_names(self, small_cnn):
        ext = GlobalFeatureExtractor()
        gf = ext.extract(small_cnn)
        assert gf.structural.shape == (ext.structural_dim,)
        assert gf.statistics.shape == (ext.statistics_dim,)
        assert ext.structural_dim == len(STRUCTURAL_FEATURE_NAMES)
        assert ext.statistics_dim == len(STATISTICS_FEATURE_NAMES)

    def test_vector_concatenates(self, small_cnn):
        gf = GlobalFeatureExtractor().extract(small_cnn)
        assert np.allclose(gf.vector,
                           np.concatenate([gf.structural, gf.statistics]))

    def test_whole_graph_position_features(self, small_cnn):
        gf = GlobalFeatureExtractor().extract(small_cnn)
        assert gf.statistics[-2] == 0.0   # position_frac
        assert gf.statistics[-1] == 1.0   # length_frac

    def test_block_position_features(self, small_cnn):
        n = len(small_cnn.compute_nodes())
        gf = GlobalFeatureExtractor().extract(small_cnn,
                                              range(n // 2, n))
        assert gf.statistics[-2] == pytest.approx((n // 2) / n)
        assert gf.statistics[-1] == pytest.approx((n - n // 2) / n)

    def test_flops_fractions_sum_to_one(self, resnet34):
        gf = GlobalFeatureExtractor().extract(resnet34)
        names = STATISTICS_FEATURE_NAMES
        start = names.index("flops_frac_conv")
        fracs = gf.statistics[start:start + 10]
        assert fracs.sum() == pytest.approx(1.0)

    def test_has_attention_flag(self):
        ext = GlobalFeatureExtractor()
        vit = ext.extract(build_model("vit_b_32"))
        cnn = ext.extract(build_model("resnet18"))
        idx = STRUCTURAL_FEATURE_NAMES.index("has_attention")
        assert vit.structural[idx] == 1.0
        assert cnn.structural[idx] == 0.0

    def test_empty_block_rejected(self, small_cnn):
        with pytest.raises(ValueError):
            GlobalFeatureExtractor().extract(small_cnn, [])

    def test_out_of_range_block_rejected(self, small_cnn):
        with pytest.raises(IndexError):
            GlobalFeatureExtractor().extract(small_cnn, [999])

    def test_block_matrix(self, small_cnn):
        ext = GlobalFeatureExtractor()
        n = len(small_cnn.compute_nodes())
        m = ext.extract_block_matrix(small_cnn,
                                     [range(n // 2), range(n // 2, n)])
        assert m.shape == (2, ext.structural_dim + ext.statistics_dim)
