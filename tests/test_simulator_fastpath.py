"""Equivalence suite for the simulator's static-run fast path.

When a run can contain no mid-op surprises — no duration noise, no
thermal feedback, no fault injector, and a governor that declares
``supports_static_fast_path`` — :meth:`InferenceSimulator.run`
integrates whole op sequences from cached ProfileTable-style rows
instead of walking the per-segment reference loop.  The contract is
byte-identity: traces, telemetry samples, reports, metrics, anomaly
records and the reconciled energy ledger must be indistinguishable
from the retained generic loop, and any dynamic ingredient must
disable the fast path entirely.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.governors.static import StaticGovernor
from repro.hw import InferenceJob, InferenceSimulator, jetson_tx2
from repro.hw.faults import FaultProfile
from repro.hw.platform import jetson_agx_xavier
from repro.hw.thermal import ThermalConfig
from repro.models.random_gen import RandomDNNConfig, RandomDNNGenerator
from repro.obs import Observability, MetricsRegistry, NULL_TRACER
from repro.obs.anomaly import AnomalyDetector
from repro.obs.ledger import EnergyLedger

pytestmark = pytest.mark.faults


class GenericStatic(StaticGovernor):
    """StaticGovernor stripped of its marker: identical decisions, but
    forced through the per-segment reference loop."""
    supports_static_fast_path = False


class RogueStatic(StaticGovernor):
    """Claims the fast path but then *does* switch from its hooks.  The
    marker is a performance claim, not a correctness contract: the lean
    loops must honour every returned level exactly like the generic
    loop does."""

    def on_job_start(self, job_idx, job):
        return 1 if job_idx % 2 == 0 else None

    def on_op_start(self, job_idx, op_idx, work):
        return 3 if op_idx == 2 else None

    def on_sample(self, sample):
        return 0 if sample.cpu_busy > 0.5 else None


class RogueGeneric(RogueStatic):
    supports_static_fast_path = False


def _graph(seed):
    return RandomDNNGenerator(RandomDNNConfig(), seed=seed).generate()


def _assert_identical(a, b):
    assert a.trace.segments == b.trace.segments
    assert a.samples == b.samples
    assert a.report == b.report
    assert a.per_job == b.per_job
    assert a.switch_count == b.switch_count
    la = EnergyLedger.from_result(a)
    lb = EnergyLedger.from_result(b)
    assert la.reconciliation.energy_rel_err <= 1e-9
    assert lb.reconciliation.energy_rel_err <= 1e-9
    assert la.to_dict() == lb.to_dict()


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(min_value=0, max_value=200),
       level=st.sampled_from((None, 0, 2, -1, -2)),
       cpu_policy=st.sampled_from(("ondemand", "efficient", "max")),
       sample_period=st.sampled_from((0.005, 0.02, 0.1)),
       batch=st.integers(min_value=1, max_value=32))
def test_static_fast_path_matches_generic_loop(seed, level, cpu_policy,
                                               sample_period, batch):
    platform = jetson_tx2() if seed % 2 else jetson_agx_xavier()
    job = InferenceJob(graph=_graph(seed % 8), batch_size=batch,
                       n_batches=2)
    kw = dict(sample_period=sample_period, noise_std=0.0, seed=seed)
    fast = InferenceSimulator(platform, **kw).run(
        [job], StaticGovernor(level, cpu_policy=cpu_policy))
    ref = InferenceSimulator(platform, **kw).run(
        [job], GenericStatic(level, cpu_policy=cpu_policy))
    _assert_identical(fast, ref)


def test_multi_job_shared_cache_cold_and_warm():
    """Fleet-style reuse: a shared op-row cache across simulator
    instances must not change a single byte, cold or warm."""
    platform = jetson_tx2()
    jobs = [InferenceJob(graph=_graph(s), batch_size=16, n_batches=3)
            for s in range(4)]
    ref = InferenceSimulator(platform, sample_period=0.02).run(
        jobs, GenericStatic())
    cache: dict = {}
    cold = InferenceSimulator(platform, sample_period=0.02,
                              op_row_cache=cache).run(jobs,
                                                      StaticGovernor())
    assert len(cache) > 0
    warm = InferenceSimulator(platform, sample_period=0.02,
                              op_row_cache=cache).run(jobs,
                                                      StaticGovernor())
    _assert_identical(cold, ref)
    _assert_identical(warm, ref)


def test_rogue_marker_governor_switches_honoured():
    """A governor that lies about being static still gets byte-exact
    treatment — hook-returned levels are applied in-path."""
    platform = jetson_tx2()
    jobs = [InferenceJob(graph=_graph(s), batch_size=8, n_batches=2)
            for s in range(3)]
    fast = InferenceSimulator(platform, sample_period=0.01).run(
        jobs, RogueStatic())
    ref = InferenceSimulator(platform, sample_period=0.01).run(
        jobs, RogueGeneric())
    assert fast.switch_count > 0  # the rogue hooks actually fired
    _assert_identical(fast, ref)


@pytest.mark.parametrize("dynamics", [
    dict(noise_std=0.05),
    dict(thermal=ThermalConfig()),
    dict(faults=FaultProfile(seed=5, switch_drop_rate=0.3,
                             telemetry_noise_std=0.2)),
    dict(noise_std=0.05, thermal=ThermalConfig(),
         faults=FaultProfile(seed=5, switch_delay_rate=0.5)),
])
def test_dynamic_runs_fall_back_to_generic(dynamics):
    """Noise, thermal feedback or fault injection must disable the fast
    path: a marked and an unmarked governor see the exact same run."""
    platform = jetson_tx2()
    job = InferenceJob(graph=_graph(1), batch_size=8, n_batches=2)
    kw = dict(sample_period=0.01, seed=11, **dynamics)
    fast = InferenceSimulator(platform, **kw).run([job],
                                                  StaticGovernor())
    ref = InferenceSimulator(platform, **kw).run([job], GenericStatic())
    _assert_identical(fast, ref)


def test_metrics_and_anomaly_observability_identical():
    """The fast path's inlined window closure must feed metrics and the
    anomaly detector exactly like the generic loop."""
    platform = jetson_tx2()
    jobs = [InferenceJob(graph=_graph(s), batch_size=8, n_batches=2)
            for s in range(2)]

    def run(governor_cls):
        obs = Observability(tracer=NULL_TRACER,
                            metrics=MetricsRegistry())
        detector = AnomalyDetector()
        result = InferenceSimulator(platform, sample_period=0.01,
                                    obs=obs, anomaly=detector).run(
            jobs, governor_cls())
        return result, obs.metrics.to_dict(), detector.anomalies

    fast, fast_metrics, fast_anoms = run(StaticGovernor)
    ref, ref_metrics, ref_anoms = run(GenericStatic)
    _assert_identical(fast, ref)
    assert fast_metrics == ref_metrics
    assert fast_anoms == ref_anoms


def test_cache_injection_inert_for_dynamic_governors():
    """Passing an op-row cache to a run that never takes the fast path
    must change nothing (and leave the per-level row cache unused)."""
    platform = jetson_tx2()
    job = InferenceJob(graph=_graph(2), batch_size=8, n_batches=2)
    cache: dict = {}
    with_cache = InferenceSimulator(platform, sample_period=0.01,
                                    op_row_cache=cache).run(
        [job], GenericStatic())
    without = InferenceSimulator(platform, sample_period=0.01).run(
        [job], GenericStatic())
    _assert_identical(with_cache, without)
    assert not any(key[0] != "works" for key in cache)
