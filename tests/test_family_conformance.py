"""Conformance harness for input-aware plan families.

Two layers of lock-down:

* **drift-retention ordering** — on the drift-retention experiment the
  plan family must beat both the adaptive single plan and the static
  plan at *every* fault scale (``family >= adaptive >= static``), while
  the no-drift anchor stays byte-identical across all three runtimes
  (a family is pure routing, never a numerics change);
* **serving identity** — with families enabled in the fleet simulator,
  a dense trace served by ``powerlens-family`` produces an event log
  byte-identical to plain ``powerlens`` (size-1 family == static),
  sparse traces replay byte-identically across seeds and ``n_jobs``
  values, and every dispatch ledger still reconciles within 1e-9.
"""

from __future__ import annotations

import math

import pytest

from repro.experiments.adaptive import run_adaptive_retention
from repro.serving import (
    DeviceConfig,
    Fleet,
    FleetScheduler,
    SchedulerConfig,
    make_trace,
)
from tests.conftest import build_small_cnn

pytestmark = pytest.mark.family

MODEL = "small_cnn"
SPARSITIES = (0.3, 0.6)


# ----------------------------------------------------------------------
# Drift-retention ordering
# ----------------------------------------------------------------------

@pytest.fixture(scope="module")
def retention():
    """One full drift-retention sweep, shared by the ordering tests."""
    return run_adaptive_retention()


class TestRetentionOrdering:
    def test_family_beats_adaptive_beats_static_at_every_scale(
            self, retention):
        for i, scale in enumerate(retention.scales):
            fam = retention.ee["family"][i]
            ad = retention.ee["adaptive"][i]
            st = retention.ee["static"][i]
            assert fam >= ad >= st, (
                f"ordering violated at scale {scale}: "
                f"family={fam} adaptive={ad} static={st}")

    def test_family_strictly_beats_static_somewhere(self, retention):
        # The ordering above permits ties everywhere; the family must
        # actually earn its keep on at least one scale.
        assert any(f > s for f, s in zip(retention.ee["family"],
                                         retention.ee["static"]))

    def test_anchor_byte_identical(self, retention):
        # No drift => the family always selects the build-batch member,
        # which is the same plan object the static governor runs.
        assert retention.anchor_identical

    def test_to_dict_exports_family_series(self, retention):
        data = retention.to_dict()
        assert "family" in data["ee"]
        assert len(data["ee"]["family"]) == len(retention.scales)
        for key in ("gain", "retention"):
            assert "family" in data[key]


# ----------------------------------------------------------------------
# Serving identity and determinism
# ----------------------------------------------------------------------

def _build_fleet(governor: str, fleet_seed: int = 0,
                 sparsity_edges=(0.0,)) -> Fleet:
    configs = [DeviceConfig("tx2-0", "tx2"),
               DeviceConfig("agx-1", "agx")]
    fleet = Fleet.build(configs, governor=governor,
                        fleet_seed=fleet_seed,
                        sparsity_edges=sparsity_edges)
    fleet.add_graph(build_small_cnn(MODEL))
    return fleet


def _run(governor: str, seed: int = 7, sparsity_choices=None,
         sparsity_edges=(0.0,), n_jobs: int = 1):
    fleet = _build_fleet(governor, fleet_seed=seed,
                         sparsity_edges=sparsity_edges)
    trace = make_trace("poisson", rate_rps=40.0, duration_s=0.5,
                       models=[MODEL], seed=seed,
                       slo_latency_s=math.inf,
                       sparsity_choices=sparsity_choices)
    scheduler = FleetScheduler(fleet, SchedulerConfig(policy="fifo"))
    return scheduler.run(trace, n_jobs=n_jobs)


class TestServingFamilyIdentity:
    @pytest.mark.parametrize("pair", [
        ("powerlens", "powerlens-family"),
        ("powerlens-adaptive", "powerlens-family-adaptive"),
    ])
    def test_dense_family_log_byte_identical_to_base(self, pair):
        # A dense trace only ever exercises the sparsity-0 bucket, so
        # the family governor degenerates to its base flavor and the
        # canonical event logs match byte-for-byte.
        base, family = pair
        assert _run(base).event_log() == _run(family).event_log()

    def test_sparse_replay_byte_identical(self):
        a = _run("powerlens-family", sparsity_choices=list(SPARSITIES),
                 sparsity_edges=(0.0,) + SPARSITIES)
        b = _run("powerlens-family", sparsity_choices=list(SPARSITIES),
                 sparsity_edges=(0.0,) + SPARSITIES)
        assert a.event_log() == b.event_log()
        assert a.report.to_dict() == b.report.to_dict()

    @pytest.mark.parametrize("governor",
                             ["powerlens-family",
                              "powerlens-family-adaptive"])
    def test_sparse_log_invariant_across_n_jobs(self, governor):
        serial = _run(governor, sparsity_choices=list(SPARSITIES),
                      sparsity_edges=(0.0,) + SPARSITIES, n_jobs=1)
        parallel = _run(governor, sparsity_choices=list(SPARSITIES),
                        sparsity_edges=(0.0,) + SPARSITIES, n_jobs=4)
        assert serial.event_log() == parallel.event_log()
        assert serial.report.fleet_energy_j \
            == parallel.report.fleet_energy_j

    def test_sparse_dispatches_carry_sparsity_events(self):
        result = _run("powerlens-family",
                      sparsity_choices=list(SPARSITIES),
                      sparsity_edges=(0.0,) + SPARSITIES)
        sparse_events = [e for e in result.events
                        if e["event"] == "dispatch"
                        and "sparsity" in e]
        assert sparse_events
        assert {e["sparsity"] for e in sparse_events} <= set(SPARSITIES)

    @pytest.mark.parametrize("governor",
                             ["powerlens-family",
                              "powerlens-family-adaptive"])
    def test_ledgers_reconcile_with_families(self, governor):
        result = _run(governor, sparsity_choices=list(SPARSITIES),
                      sparsity_edges=(0.0,) + SPARSITIES)
        assert result.dispatches
        assert all(d.ledger_ok for d in result.dispatches)
        assert result.report.energy_rel_err <= 1e-9
