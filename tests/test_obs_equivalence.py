"""Observability no-op equivalence: attaching an *enabled* tracer and
metrics registry must not perturb any instrumented computation — the
datasets, trained models, governor decisions, simulator traces and CLI
tables must be byte-identical with observability on and off.  This is
the property (mirroring ``tests/test_zero_fault_equivalence.py`` for the
fault layer) that lets the instrumentation ship inside the production
path instead of behind a fork."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.datasets import DatasetGenerator
from repro.core.labeling import label_network
from repro.core.overhead import StageTimer
from repro.governors import FrequencyPlan, OndemandGovernor, PlanStep, \
    PresetGovernor
from repro.hw import InferenceJob, InferenceSimulator, jetson_tx2
from repro.models.random_gen import RandomDNNConfig
from repro.obs import Observability, Tracer
from repro.obs.metrics import MetricsRegistry

from tests.conftest import build_small_cnn

pytestmark = pytest.mark.obs

_TINY_DNNS = RandomDNNConfig(min_stages=1, max_stages=2,
                             max_blocks_per_stage=2)


def _obs() -> Observability:
    return Observability.enabled_bundle()


class TestDatasetEquivalence:
    @settings(max_examples=3, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**16))
    def test_generated_datasets_byte_identical(self, seed):
        platform = jetson_tx2()
        base_gen = DatasetGenerator(platform, dnn_config=_TINY_DNNS)
        obs = _obs()
        obs_gen = DatasetGenerator(platform, dnn_config=_TINY_DNNS,
                                   obs=obs)
        a0, b0, s0 = base_gen.generate(3, seed=seed)
        a1, b1, s1 = obs_gen.generate(3, seed=seed)
        for x, y in ((a0.x_struct, a1.x_struct), (a0.x_stats, a1.x_stats),
                     (a0.y, a1.y), (a0.qualities, a1.qualities),
                     (b0.x, b1.x), (b0.y, b1.y)):
            assert x.dtype == y.dtype
            assert x.tobytes() == y.tobytes()
        assert s0.n_blocks == s1.n_blocks
        # ...and the observed run actually observed something.
        assert obs.metrics.counter(
            "powerlens_networks_labeled_total").value == 3
        names = {s.name for s in obs.tracer.spans}
        assert {"generate", "label_network", "distance", "cluster",
                "evaluate"} <= names

    def test_label_network_identical_with_tracer(self, tx2):
        from repro.core.features import DepthwiseFeatureExtractor
        from repro.core.schemes import default_scheme_grid
        from repro.hw.analytic import AnalyticEvaluator
        graph = build_small_cnn()
        evaluator = AnalyticEvaluator(tx2)
        feats = DepthwiseFeatureExtractor().extract_scaled(graph)
        schemes = default_scheme_grid()
        base = label_network(evaluator, graph, feats, schemes)
        traced = label_network(evaluator, graph, feats, schemes,
                               tracer=Tracer())
        assert traced.best_scheme == base.best_scheme
        assert traced.blocks == base.blocks
        assert traced.levels == base.levels
        assert traced.qualities == base.qualities
        # Span-derived stage timings cover the same stages either way.
        assert set(base.stage_seconds) == set(traced.stage_seconds) == \
            {"distance", "cluster", "evaluate"}


def _run(platform, governor, obs):
    graph = build_small_cnn()
    jobs = [InferenceJob(graph=graph, n_batches=2),
            InferenceJob(graph=graph, n_batches=1)]
    return InferenceSimulator(platform, obs=obs).run(jobs, governor)


def _assert_runs_identical(base, other):
    assert other.report == base.report
    assert other.trace.segments == base.trace.segments
    assert other.samples == base.samples
    assert other.switch_count == base.switch_count


class TestRuntimeEquivalence:
    @settings(max_examples=8, deadline=None)
    @given(levels=st.lists(st.integers(min_value=0, max_value=12),
                           min_size=2, max_size=2, unique=True))
    def test_preset_runtime_identical_under_obs(self, levels):
        platform = jetson_tx2()
        plan = FrequencyPlan(graph_name="small_cnn",
                             steps=[PlanStep(0, levels[0]),
                                    PlanStep(4, levels[1])])
        obs = _obs()
        base = _run(platform, PresetGovernor([plan]), obs=None)
        observed = _run(platform,
                        PresetGovernor([plan], metrics=obs.metrics),
                        obs=obs)
        _assert_runs_identical(base, observed)
        assert obs.metrics.counter(
            "powerlens_dvfs_switches_total").value == observed.switch_count
        hist = obs.metrics.get("powerlens_dvfs_switch_stall_seconds")
        assert hist.count == observed.switch_count

    def test_reactive_governor_identical_under_obs(self):
        platform = jetson_tx2()
        obs = _obs()
        base = _run(platform, OndemandGovernor(), obs=None)
        observed = _run(platform, OndemandGovernor(), obs=obs)
        _assert_runs_identical(base, observed)
        assert obs.metrics.counter(
            "powerlens_telemetry_samples_total").value == \
            len(observed.samples)

    def test_governor_metrics_mirror_health_under_faults(self):
        """Injected switch failures: the runtime counters must track
        RuntimeHealth exactly, and the run itself must not depend on the
        registry being attached."""
        from repro.hw.faults import FaultProfile
        platform = jetson_tx2()
        profile = FaultProfile(switch_drop_rate=0.5, seed=11)
        plan = FrequencyPlan(graph_name="small_cnn",
                             steps=[PlanStep(0, 2), PlanStep(4, 9)])

        def run(metrics):
            governor = PresetGovernor([plan], metrics=metrics)
            graph = build_small_cnn()
            jobs = [InferenceJob(graph=graph, n_batches=3)]
            sim = InferenceSimulator(platform, faults=profile)
            return sim.run(jobs, governor), governor

        base, _ = run(None)
        obs = _obs()
        observed, governor = run(obs.metrics)
        _assert_runs_identical(base, observed)
        health = governor.health
        assert health.switch_retries > 0  # the profile actually bit
        for event in ("switch_retries", "switch_failures",
                      "blocks_pinned", "plan_fallbacks"):
            counted = obs.metrics.counter(
                f"powerlens_runtime_{event}_total").value
            assert counted == getattr(health, event), event

    def test_all_seven_runtime_counters_mirror_health(self):
        """Every RuntimeHealth field has a ``powerlens_runtime_*_total``
        twin and they agree exactly after faulted runs — including the
        clamp / stale-plan / external-cap paths the representative
        fault profile never reaches."""
        from repro.hw import CapWindow
        from repro.hw.faults import FaultProfile
        platform = jetson_tx2()
        graph = build_small_cnn()
        fields = ("switch_retries", "switch_failures", "blocks_pinned",
                  "plans_rejected", "plan_fallbacks", "levels_clamped",
                  "caps_honored")

        def run(plan, faults=None):
            obs = _obs()
            governor = PresetGovernor([plan], metrics=obs.metrics)
            sim = InferenceSimulator(platform, faults=faults)
            sim.run([InferenceJob(graph=graph, n_batches=4)], governor)
            return governor.health, obs.metrics

        # Four blocks so three of them can exhaust their failure
        # budgets (max_block_failures) and force the plan fallback.
        plan = FrequencyPlan(graph_name="small_cnn",
                             steps=[PlanStep(0, 2), PlanStep(2, 9),
                                    PlanStep(4, 2), PlanStep(6, 9)])
        clamped = FrequencyPlan(graph_name="small_cnn",
                                steps=[PlanStep(0, 99), PlanStep(4, 9)])
        stale = FrequencyPlan(graph_name="small_cnn",
                              steps=[PlanStep(0, 2)],
                              graph_fingerprint="not-this-graph")
        scenarios = [
            (plan, FaultProfile(switch_drop_rate=0.9, seed=11)),
            (clamped, None),
            (stale, None),
            (plan, FaultProfile(cap_windows=(CapWindow(0.0, 60.0, 0),))),
        ]
        exercised = set()
        for scenario_plan, faults in scenarios:
            health, metrics = run(scenario_plan, faults)
            for event in fields:
                counted = metrics.counter(
                    f"powerlens_runtime_{event}_total").value
                assert counted == getattr(health, event), event
                if counted:
                    exercised.add(event)
        assert exercised == set(fields)  # each counter actually fired

    def test_run_identical_with_live_exporter_scraping(self):
        """A live /metrics scrape mid-session must not perturb the
        instrumented run."""
        import urllib.request
        from repro.obs.exporter import MetricsExporter
        platform = jetson_tx2()
        base = _run(platform, OndemandGovernor(), obs=None)
        obs = _obs()
        with MetricsExporter(obs) as exporter:
            observed = _run(platform, OndemandGovernor(), obs=obs)
            with urllib.request.urlopen(exporter.url + "metrics",
                                        timeout=5.0) as resp:
                assert resp.status == 200
                assert b"powerlens_telemetry_samples_total" in \
                    resp.read()
        _assert_runs_identical(base, observed)


class TestStageTimerEquivalence:
    def test_mirror_tracer_does_not_change_aggregates(self):
        plain = StageTimer()
        mirrored = StageTimer(tracer=Tracer())
        for timer in (plain, mirrored):
            with timer.stage("a"):
                pass
            timer.record("b", 1.5)
        assert plain.stages() == mirrored.stages() == ["a", "b"]
        assert plain.total("b") == mirrored.total("b") == 1.5

    def test_table3_works_without_observability(self, fitted_lens):
        report = fitted_lens.overhead_report()
        assert report.training  # stage totals survive with obs off
        assert any(s == "dataset generation"
                   for s, _ in report.training)
