"""DatasetCache corruption matrix: every way an on-disk entry can rot —
truncated payload, bit-flipped payload, missing manifest, stale cache
format version, recorded-key mismatch — must read as a clean miss, be
evicted, and leave the slot ready to regenerate."""

import json

import numpy as np
import pytest

from repro.core.datasets import DatasetA, DatasetB, GenerationStats
from repro.core.persistence import DATASET_CACHE_VERSION, DatasetCache

pytestmark = pytest.mark.faults

KEY = "entry-under-test"


def _dataset_a(rows=6):
    rng = np.random.default_rng(1)
    return DatasetA(
        x_struct=rng.normal(size=(rows, 3)),
        x_stats=rng.normal(size=(rows, 4)),
        y=rng.integers(0, 5, size=rows),
        n_schemes=5,
    )


def _dataset_b(rows=9):
    rng = np.random.default_rng(2)
    return DatasetB(x=rng.normal(size=(rows, 5)),
                    y=rng.integers(0, 13, size=rows), n_levels=13)


def _stats():
    return GenerationStats(n_networks=6, n_blocks=9, wall_time_s=1.5,
                           blocks_per_network=[1, 2, 1, 2, 1, 2],
                           n_retries=3, quarantined=[4])


@pytest.fixture()
def cache(tmp_path):
    cache = DatasetCache(tmp_path / "cache")
    cache.store(KEY, _dataset_a(), _dataset_b(), _stats())
    return cache


def _entry_files(cache):
    return sorted(p.name for p in cache.directory.iterdir()
                  if p.name.startswith(KEY))


def _assert_miss_evicts_and_regenerates(cache):
    assert cache.load(KEY) is None
    assert _entry_files(cache) == []
    assert not cache.has(KEY)
    # The slot is immediately reusable.
    cache.store(KEY, _dataset_a(), _dataset_b(), _stats())
    reloaded = cache.load(KEY)
    assert reloaded is not None


class TestIntactEntry:
    def test_round_trip_with_stats(self, cache):
        loaded = cache.load(KEY)
        assert loaded is not None
        dataset_a, dataset_b, stats = loaded
        original_a, original_b = _dataset_a(), _dataset_b()
        assert dataset_a.x_struct.tobytes() == original_a.x_struct.tobytes()
        assert dataset_b.x.tobytes() == original_b.x.tobytes()
        assert stats.cache_hit
        assert stats.n_retries == 3
        assert stats.quarantined == [4]
        assert stats.n_quarantined == 1


class TestCorruptionMatrix:
    def test_truncated_payload(self, cache):
        path = cache.directory / f"{KEY}.a.npz"
        payload = path.read_bytes()
        path.write_bytes(payload[: len(payload) // 2])
        _assert_miss_evicts_and_regenerates(cache)

    def test_empty_payload(self, cache):
        (cache.directory / f"{KEY}.b.npz").write_bytes(b"")
        _assert_miss_evicts_and_regenerates(cache)

    def test_bit_flipped_payload(self, cache):
        path = cache.directory / f"{KEY}.b.npz"
        payload = bytearray(path.read_bytes())
        payload[len(payload) // 2] ^= 0xFF
        path.write_bytes(bytes(payload))
        _assert_miss_evicts_and_regenerates(cache)

    def test_missing_manifest(self, cache):
        (cache.directory / f"{KEY}.json").unlink()
        assert not cache.has(KEY)
        _assert_miss_evicts_and_regenerates(cache)

    def test_missing_payload_file(self, cache):
        (cache.directory / f"{KEY}.a.npz").unlink()
        _assert_miss_evicts_and_regenerates(cache)

    def test_manifest_garbage(self, cache):
        (cache.directory / f"{KEY}.json").write_text("{not json")
        _assert_miss_evicts_and_regenerates(cache)

    def test_stale_cache_version(self, cache):
        manifest = cache.directory / f"{KEY}.json"
        meta = json.loads(manifest.read_text())
        meta["version"] = DATASET_CACHE_VERSION - 1
        manifest.write_text(json.dumps(meta))
        _assert_miss_evicts_and_regenerates(cache)

    def test_key_mismatch(self, cache):
        manifest = cache.directory / f"{KEY}.json"
        meta = json.loads(manifest.read_text())
        meta["key"] = "someone-else"
        manifest.write_text(json.dumps(meta))
        _assert_miss_evicts_and_regenerates(cache)

    def test_tampered_checksum(self, cache):
        manifest = cache.directory / f"{KEY}.json"
        meta = json.loads(manifest.read_text())
        meta["checksums"]["a"] = "0" * 64
        manifest.write_text(json.dumps(meta))
        _assert_miss_evicts_and_regenerates(cache)

    def test_corruption_is_per_entry(self, cache):
        """Damaging one entry must not disturb its neighbours."""
        cache.store("healthy", _dataset_a(3), _dataset_b(4),
                    GenerationStats(n_networks=3))
        (cache.directory / f"{KEY}.a.npz").write_bytes(b"rot")
        assert cache.load(KEY) is None
        assert cache.load("healthy") is not None
