"""Timeline export: Chrome trace_event JSON, critical path, CLI.

The timeline layer reconstructs a serving run purely from the
canonical event log.  Pinned here:

* the Chrome export passes :func:`validate_chrome_trace` (the subset
  schema we emit: M/X/C/i phases, finite microsecond timestamps);
* the critical-path decomposition sums to end-to-end latency within
  1e-9 for every request the report knows about;
* ``powerlens timeline`` renders the breakdown table, writes valid
  Chrome JSON via ``--out``, and speaks JSON via ``--json``;
* ``powerlens trace`` recognizes a serving event log and redirects to
  ``powerlens timeline`` instead of reporting malformed spans
  (satellite: trace-shape sniffing).
"""

from __future__ import annotations

import json
import math

import pytest

import repro.cli as cli
from repro.obs.timeline import (
    ServingTimeline,
    looks_like_event_log,
    read_event_log,
    summarize_serving_events,
    validate_chrome_trace,
)
from repro.serving import (
    DeviceConfig,
    Fleet,
    FleetScheduler,
    SchedulerConfig,
    make_trace,
)
from tests.conftest import build_small_cnn

pytestmark = [pytest.mark.serving, pytest.mark.obs]

MODEL = "small_cnn"


def _result(seed: int = 7, rate: float = 40.0, duration: float = 0.5,
            slo: float = math.inf, policy: str = "fifo",
            queue_capacity: int = 64):
    fleet = Fleet.build([DeviceConfig("tx2-0", "tx2"),
                         DeviceConfig("agx-1", "agx")],
                        governor="powerlens", fleet_seed=seed)
    fleet.add_graph(build_small_cnn(MODEL))
    trace = make_trace("poisson", rate_rps=rate, duration_s=duration,
                       models=[MODEL], seed=seed, slo_latency_s=slo)
    return FleetScheduler(fleet, SchedulerConfig(
        policy=policy, queue_capacity=queue_capacity)).run(trace)


@pytest.fixture(scope="module")
def run():
    return _result()


@pytest.fixture(scope="module")
def timeline(run):
    return ServingTimeline.from_events(run.events)


# ----------------------------------------------------------------------
# reconstruction from the event log
# ----------------------------------------------------------------------
class TestReconstruction:
    def test_requests_match_report(self, run, timeline):
        assert len(timeline.requests) == (run.report.completed
                                          + run.report.dropped_expired
                                          + run.report.dropped_queue_full
                                          + run.report.dropped_unserviceable)
        completed = [r for r in timeline.requests.values()
                     if r.completed]
        assert len(completed) == run.report.completed

    def test_components_sum_exactly(self, timeline):
        for row in timeline.requests.values():
            total = row.queue_s + row.batch_s + row.service_s
            assert total == pytest.approx(row.latency_s, abs=1e-9)
            assert row.queue_s >= 0 and row.batch_s >= 0
            assert row.service_s >= 0

    def test_device_tracks_cover_all_dispatches(self, run, timeline):
        n_jobs = sum(len(track.jobs)
                     for track in timeline.devices.values())
        assert n_jobs == len(run.dispatches)
        for track in timeline.devices.values():
            assert track.busy_s >= 0
            for start, end, label in track.jobs:
                assert end >= start
                assert MODEL in label

    def test_queue_depth_never_negative(self, timeline):
        assert timeline.queue_depth
        assert all(depth >= 0 for _, depth in timeline.queue_depth)
        assert timeline.queue_depth[-1][1] == 0

    def test_critical_path_rows_slowest_first(self, timeline):
        rows = timeline.critical_path_rows()
        assert rows
        latencies = [r.latency_s for r in rows]
        assert latencies == sorted(latencies, reverse=True)
        assert all(r.completed for r in rows)


# ----------------------------------------------------------------------
# Chrome trace_event export
# ----------------------------------------------------------------------
class TestChromeExport:
    def test_export_is_schema_valid(self, timeline):
        payload = timeline.to_chrome_trace()
        validate_chrome_trace(payload)
        assert payload["displayTimeUnit"] == "ms"
        names = {e["name"] for e in payload["traceEvents"]}
        assert "queue_depth" in names
        assert any(e["ph"] == "X" for e in payload["traceEvents"])

    def test_sampled_ids_restrict_request_tracks(self, timeline):
        all_ids = set(timeline.requests)
        some = set(sorted(all_ids)[:2])
        full = timeline.to_chrome_trace()
        slim = timeline.to_chrome_trace(sampled_ids=some)
        def request_tids(payload):
            return {e["tid"] for e in payload["traceEvents"]
                    if e.get("cat") == "request"}
        assert request_tids(slim) == some
        assert request_tids(full) == all_ids

    def test_request_track_cap_recorded(self, timeline):
        payload = timeline.to_chrome_trace(max_request_tracks=1)
        validate_chrome_trace(payload)
        tids = {e["tid"] for e in payload["traceEvents"]
                if e.get("cat") == "request"}
        assert len(tids) == 1
        assert payload["metadata"]["request_tracks"] == 1
        dropped = payload["metadata"]["request_tracks_dropped"]
        assert dropped == len(timeline.requests) - 1

    def test_burn_spans_rendered(self, timeline):
        timeline2 = ServingTimeline.from_events([])
        timeline2.add_burn_spans(
            [("slo_burn", 0.1, 0.3, {"peak_fast_burn": 7.0})])
        payload = timeline2.to_chrome_trace()
        validate_chrome_trace(payload)
        burn = [e for e in payload["traceEvents"]
                if e["name"] == "slo_burn"]
        assert len(burn) == 1
        assert burn[0]["dur"] == pytest.approx(0.2 * 1e6)

    @pytest.mark.parametrize("payload", [
        [],                                             # not an object
        {"traceEvents": {}},                            # not a list
        {"traceEvents": [{"ph": "Q", "name": "x", "pid": 0}]},
        {"traceEvents": [{"ph": "X", "name": "x", "pid": 0,
                          "ts": float("nan"), "dur": 1}]},
        {"traceEvents": [{"ph": "X", "name": "x", "pid": 0,
                          "ts": 0, "dur": -1}]},
        {"traceEvents": [{"ph": "M", "name": "oddball", "pid": 0,
                          "args": {"name": "x"}}]},
        {"traceEvents": [{"ph": "C", "name": "x", "pid": 0,
                          "ts": 0}]},
        {"traceEvents": [{"ph": "i", "name": "x", "pid": 0,
                          "ts": 0}]},
    ])
    def test_validator_rejects_bad_payloads(self, payload):
        with pytest.raises(ValueError):
            validate_chrome_trace(payload)


# ----------------------------------------------------------------------
# event-log parsing helpers
# ----------------------------------------------------------------------
class TestEventLogParsing:
    def test_read_event_log_tolerant(self, tmp_path):
        path = tmp_path / "ev.jsonl"
        path.write_text("\n".join([
            json.dumps({"seq": 0, "t": 0.0, "event": "admit",
                        "request_id": 0}),
            "not json at all {{",
            json.dumps({"no_event_key": True}),
            "",
            json.dumps({"seq": 1, "t": 0.1, "event": "complete",
                        "request_id": 0}),
        ]) + "\n")
        events, malformed = read_event_log(path)
        assert len(events) == 2
        assert malformed == 2

    def test_looks_like_event_log(self):
        good = [{"seq": 0, "t": 0.0, "event": "admit"}]
        assert looks_like_event_log(good)
        assert not looks_like_event_log([])
        assert not looks_like_event_log(
            good + [{"type": "span", "name": "x"}])
        assert not looks_like_event_log(["just a string"])

    def test_summarize_serving_events(self, run):
        digest = summarize_serving_events(run.events)
        assert f"{run.report.admitted} admitted" in digest
        assert f"{run.report.completed} completed" in digest
        assert "dispatch=" in digest

    def test_from_file_round_trip(self, tmp_path, run, timeline):
        path = tmp_path / "ev.jsonl"
        path.write_text(run.event_log())
        rebuilt = ServingTimeline.from_file(path)
        assert len(rebuilt.requests) == len(timeline.requests)
        assert rebuilt.makespan_s == timeline.makespan_s


# ----------------------------------------------------------------------
# CLI: powerlens timeline + the trace redirect
# ----------------------------------------------------------------------
_ARGS = ["serve-sim", "--devices", "tx2,agx", "--rate", "15",
         "--duration", "0.5", "--seed", "7", "--models", "alexnet"]


class TestTimelineCli:
    @pytest.fixture()
    def event_log(self, tmp_path):
        path = tmp_path / "ev.jsonl"
        assert cli.main(_ARGS + ["--event-log", str(path)]) == 0
        return path

    def test_report_table(self, event_log, capsys):
        capsys.readouterr()
        assert cli.main(["timeline", str(event_log), "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "critical path" in out
        assert "per-device occupancy" in out
        assert "top 3 slowest requests" in out
        for component in ("queue", "batch", "service", "total"):
            assert component in out

    def test_out_writes_valid_chrome_json(self, event_log, tmp_path,
                                          capsys):
        chrome = tmp_path / "tl.json"
        assert cli.main(["timeline", str(event_log),
                         "--out", str(chrome)]) == 0
        capsys.readouterr()
        payload = json.loads(chrome.read_text())
        validate_chrome_trace(payload)

    def test_json_mode(self, event_log, capsys):
        capsys.readouterr()
        assert cli.main(["timeline", str(event_log), "--json"]) == 0
        digest = json.loads(capsys.readouterr().out)
        assert digest["requests"] == digest["completed"]
        assert digest["events"] > 0
        assert digest["devices"]
        assert digest["slowest"]
        top = digest["slowest"][0]
        assert top["queue_s"] + top["batch_s"] + top["service_s"] \
            == pytest.approx(top["latency_s"], abs=1e-9)

    def test_missing_file_fails(self, tmp_path, capsys):
        assert cli.main(["timeline",
                         str(tmp_path / "nope.jsonl")]) == 1
        assert "cannot read" in capsys.readouterr().err

    def test_empty_log_fails(self, tmp_path, capsys):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert cli.main(["timeline", str(path)]) == 1

    def test_trace_redirects_serving_logs(self, event_log, capsys):
        capsys.readouterr()
        assert cli.main(["trace", str(event_log)]) == 0
        out = capsys.readouterr().out
        assert "serving event log" in out
        assert "powerlens timeline" in out
        assert "admitted" in out

    def test_trace_still_reports_genuinely_malformed(self, tmp_path,
                                                     capsys):
        path = tmp_path / "junk.jsonl"
        path.write_text("this is not json\nnor this\n")
        cli.main(["trace", str(path)])
        out = capsys.readouterr().out
        assert "serving event log" not in out
