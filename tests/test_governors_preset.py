"""FrequencyPlan / PresetGovernor / oracle tests."""

import pytest

from repro.governors import FrequencyPlan, PlanStep, PresetGovernor
from repro.governors.oracle import OracleGovernor, oracle_plan
from repro.hw import InferenceJob, InferenceSimulator


class TestFrequencyPlan:
    def test_requires_steps(self):
        with pytest.raises(ValueError):
            FrequencyPlan(graph_name="g", steps=[])

    def test_must_start_at_zero(self):
        with pytest.raises(ValueError):
            FrequencyPlan(graph_name="g", steps=[PlanStep(3, 1)])

    def test_strictly_increasing(self):
        with pytest.raises(ValueError):
            FrequencyPlan(graph_name="g",
                          steps=[PlanStep(0, 1), PlanStep(0, 2)])
        with pytest.raises(ValueError):
            FrequencyPlan(graph_name="g",
                          steps=[PlanStep(0, 1), PlanStep(5, 2),
                                 PlanStep(3, 1)])

    def test_level_for_op(self):
        plan = FrequencyPlan(graph_name="g", steps=[
            PlanStep(0, 2), PlanStep(10, 7), PlanStep(20, 4)])
        assert plan.level_for_op(0) == 2
        assert plan.level_for_op(9) == 2
        assert plan.level_for_op(10) == 7
        assert plan.level_for_op(25) == 4
        assert plan.n_blocks == 3

    def test_switch_indices_skip_no_ops(self):
        plan = FrequencyPlan(graph_name="g", steps=[
            PlanStep(0, 2), PlanStep(10, 2), PlanStep(20, 5)])
        assert plan.switch_indices() == [0, 20]


class TestPresetGovernor:
    def test_plan_lookup(self, small_cnn):
        plan = FrequencyPlan(graph_name=small_cnn.name,
                             steps=[PlanStep(0, 3)])
        gov = PresetGovernor([plan])
        assert gov.plan_for(small_cnn.name) is plan
        assert gov.plan_for("missing") is None

    def test_add_plan(self, small_cnn):
        gov = PresetGovernor([FrequencyPlan("a", [PlanStep(0, 1)])])
        gov.add_plan(FrequencyPlan("b", [PlanStep(0, 2)]))
        assert gov.plan_for("b") is not None

    def test_on_op_start_fires_only_at_steps(self, tx2, small_cnn):
        plan = FrequencyPlan(graph_name=small_cnn.name,
                             steps=[PlanStep(0, 3), PlanStep(4, 8)])
        gov = PresetGovernor([plan])
        gov.reset(tx2)
        job = InferenceJob(graph=small_cnn)
        gov.on_job_start(0, job)
        assert gov.on_op_start(0, 0, None) == 3
        assert gov.on_op_start(0, 1, None) is None
        assert gov.on_op_start(0, 4, None) == 8


class TestOracle:
    def test_oracle_plan_structure(self, tx2, small_cnn):
        n = len(small_cnn.compute_nodes())
        blocks = [list(range(n // 2)), list(range(n // 2, n))]
        plan = oracle_plan(tx2, small_cnn, blocks, batch_size=8)
        assert plan.graph_name == small_cnn.name
        assert plan.n_blocks == 2
        assert plan.steps[0].op_index == 0
        assert plan.steps[1].op_index == n // 2
        assert all(0 <= s.level <= tx2.max_level for s in plan.steps)

    def test_oracle_governor_beats_max_frequency(self, tx2, small_cnn):
        """The exhaustive per-block optimum must improve EE over pinned
        maximum frequency — the core premise of the whole paper."""
        from repro.governors import StaticGovernor
        n = len(small_cnn.compute_nodes())
        blocks = [list(range(n))]
        gov = OracleGovernor(tx2, [(small_cnn, blocks)], batch_size=8)
        job = InferenceJob(graph=small_cnn, batch_size=8, n_batches=3,
                           cpu_work_per_image=1e7)
        sim = InferenceSimulator(tx2)
        ee_oracle = sim.run([job], gov).report.energy_efficiency
        ee_max = InferenceSimulator(tx2).run(
            [job], StaticGovernor()).report.energy_efficiency
        assert ee_oracle > ee_max
