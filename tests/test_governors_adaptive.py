"""AdaptivePresetGovernor: the closed replanning loop, unit-level.

The contract under test (see ``repro.governors.adaptive``):

* **zero-drift byte-identity** — on plans that are already
  sweep-optimal at the observed batch size, the adaptive governor
  issues exactly the commands the static :class:`PresetGovernor`
  would (property-tested over seeds and batch sizes);
* **bounded corrections** — a synthesized correction never moves any
  block more than ``max_nudge`` levels, and untouched blocks keep
  their levels bit-for-bit;
* **adopt / converge** — a stale plan under batch drift is corrected
  within one observation and the next job's ledger stops flagging;
* **rollback + freeze** — a verify job measuring a regression restores
  the last-good plan and freezes replanning for ``cooldown_jobs``;
* **counters** — ``ReplanHealth`` and the ``powerlens_replan_*_total``
  metrics mirror each other exactly.

Also here: the plan-validation verdict cache of the base
:class:`PresetGovernor` (fingerprint-keyed, FIFO-bounded).
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.experiments.adaptive import build_drift_net
from repro.governors import AdaptivePresetGovernor, PresetGovernor
from repro.governors.adaptive import _Trial
from repro.hw.analytic import AnalyticEvaluator
from repro.hw.platform import get_platform
from repro.hw.simulator import InferenceJob, InferenceSimulator
from repro.obs import Observability, NULL_TRACER
from repro.obs.ledger import EnergyLedger
from repro.obs.metrics import MetricsRegistry
from repro.serving.fleet import analytic_plan
from tests.conftest import build_small_cnn

PLATFORM = get_platform("tx2")
EVALUATOR = AnalyticEvaluator(PLATFORM)
BUILD_BATCH = 16
DRIFT_BATCH = 1
BLOCK_SIZE = 4


def _drift_graph():
    return build_drift_net()


def _plan(graph, batch):
    return analytic_plan(EVALUATOR, graph, batch, block_size=BLOCK_SIZE)


def _adaptive(graph, batch=BUILD_BATCH, **kwargs):
    obs = Observability(tracer=NULL_TRACER, metrics=MetricsRegistry())
    kwargs.setdefault("obs", obs)
    return AdaptivePresetGovernor([_plan(graph, batch)], EVALUATOR,
                                  resilient=True, **kwargs)


def _run_job(gov, graph, batch, seed=0):
    """One job through the simulator; returns (signature, ledger)."""
    plan = gov.plan_for(graph.name) \
        if isinstance(gov, PresetGovernor) else None
    job = InferenceJob(graph=graph, batch_size=batch, n_batches=1,
                      name=f"{graph.name}_j")
    sim = InferenceSimulator(PLATFORM, seed=seed, keep_trace=True,
                             keep_samples=False)
    result = sim.run([job], gov)
    ledger = EnergyLedger.from_result(result, plan=plan, graph=graph,
                                      evaluator=EVALUATOR,
                                      batch_size=batch)
    sig = (result.trace.total_energy, result.report.total_time,
           result.switch_count)
    return sig, ledger


# ----------------------------------------------------------------------
# zero-drift byte-identity
# ----------------------------------------------------------------------
class TestZeroDriftIdentity:
    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(0, 2**31), batch=st.sampled_from([4, 16]))
    def test_identical_to_static_on_optimal_plans(self, seed, batch):
        graph = _drift_graph()
        static = PresetGovernor([_plan(graph, batch)], resilient=True)
        adaptive = _adaptive(graph, batch)
        for j in range(3):
            sig_s, _ = _run_job(static, graph, batch, seed=seed + j)
            sig_a, ledger = _run_job(adaptive, graph, batch,
                                     seed=seed + j)
            assert sig_a == sig_s
            assert adaptive.observe_job(graph, batch, ledger) == "none"
        assert not adaptive.replan_health.active
        assert adaptive.replan_health.proposed == 0


# ----------------------------------------------------------------------
# bounded corrections
# ----------------------------------------------------------------------
class TestBoundedCorrections:
    @pytest.mark.parametrize("max_nudge", [1, 2])
    def test_nudges_bounded_and_targeted(self, max_nudge):
        graph = _drift_graph()
        gov = _adaptive(graph, max_nudge=max_nudge)
        stale = gov.plan_for(graph.name)
        _, ledger = _run_job(gov, graph, DRIFT_BATCH)
        assert ledger.mispredicted_blocks()
        candidate = gov._synthesize(stale, ledger)
        assert candidate is not None
        flagged = {row.op_start for row in ledger.mispredicted_blocks()}
        for old, new in zip(stale.steps, candidate.steps):
            assert old.op_index == new.op_index
            assert abs(new.level - old.level) <= max_nudge
            if old.op_index not in flagged:
                assert new.level == old.level

    def test_synthesize_none_without_flags(self):
        graph = _drift_graph()
        gov = _adaptive(graph)
        _, ledger = _run_job(gov, graph, BUILD_BATCH)
        assert not ledger.mispredicted_blocks()
        assert gov._synthesize(gov.plan_for(graph.name), ledger) is None


# ----------------------------------------------------------------------
# adopt / converge under drift
# ----------------------------------------------------------------------
class TestAdoption:
    def test_drift_adopts_then_converges(self):
        graph = _drift_graph()
        gov = _adaptive(graph)
        stale = gov.plan_for(graph.name)
        _, ledger = _run_job(gov, graph, DRIFT_BATCH)
        assert gov.observe_job(graph, DRIFT_BATCH, ledger) == "adopt"
        adopted = gov.plan_for(graph.name)
        assert adopted is not stale
        assert gov.replan_health.adopted == 1
        assert gov.replan_health.nudged_blocks >= 1
        # the verify job runs on the corrected plan: the flags must be
        # gone and the trial confirmed
        _, ledger2 = _run_job(gov, graph, DRIFT_BATCH)
        assert gov.observe_job(graph, DRIFT_BATCH, ledger2) == "none"
        assert gov.replan_health.confirmed == 1
        assert gov.plan_for(graph.name) is adopted

    def test_adopted_correction_improves_measured_ee(self):
        graph = _drift_graph()
        static = PresetGovernor([_plan(graph, BUILD_BATCH)],
                                resilient=True)
        gov = _adaptive(graph)
        _, ledger = _run_job(gov, graph, DRIFT_BATCH)
        assert gov.observe_job(graph, DRIFT_BATCH, ledger) == "adopt"
        (e_adaptive, _, _), _ = _run_job(gov, graph, DRIFT_BATCH,
                                         seed=1)
        _run_job(static, graph, DRIFT_BATCH)  # same job sequence
        (e_static, _, _), _ = _run_job(static, graph, DRIFT_BATCH,
                                       seed=1)
        assert e_adaptive < e_static

    def test_reject_freezes_replanning(self):
        graph = _drift_graph()
        gov = _adaptive(graph, min_improvement_frac=0.9,
                        cooldown_jobs=2)
        _, ledger = _run_job(gov, graph, DRIFT_BATCH)
        assert gov.observe_job(graph, DRIFT_BATCH, ledger) == "reject"
        assert gov.replan_health.rejected == 1
        assert gov.observe_job(graph, DRIFT_BATCH, ledger) == "frozen"
        assert gov.observe_job(graph, DRIFT_BATCH, ledger) == "frozen"
        assert gov.replan_health.frozen_skips == 2
        # cooldown over: the (still mispredicted) ledger re-triggers
        assert gov.observe_job(graph, DRIFT_BATCH, ledger) == "reject"


# ----------------------------------------------------------------------
# rollback
# ----------------------------------------------------------------------
class TestRollback:
    def test_regressing_trial_rolls_back_and_freezes(self):
        graph = _drift_graph()
        gov = _adaptive(graph, cooldown_jobs=1)
        last_good = gov.plan_for(graph.name)
        _, ledger = _run_job(gov, graph, DRIFT_BATCH)
        # pretend the pre-swap job measured an absurdly good EE, so the
        # real verify measurement reads as a regression
        gov._trial[graph.name] = _Trial(previous=last_good,
                                        baseline_ee=1e9,
                                        batch_size=DRIFT_BATCH)
        assert gov.observe_job(graph, DRIFT_BATCH, ledger) == "rollback"
        assert gov.plan_for(graph.name) is last_good
        assert gov.replan_health.rollbacks == 1
        assert gov.observe_job(graph, DRIFT_BATCH, ledger) == "frozen"

    def test_batch_mismatch_trial_is_inconclusive(self):
        graph = _drift_graph()
        gov = _adaptive(graph)
        last_good = gov.plan_for(graph.name)
        _, ledger = _run_job(gov, graph, BUILD_BATCH)
        gov._trial[graph.name] = _Trial(previous=last_good,
                                        baseline_ee=1e9,
                                        batch_size=DRIFT_BATCH)
        # verify job ran at a different batch: neither rollback nor
        # confirm, trial dropped
        gov.observe_job(graph, BUILD_BATCH, ledger)
        assert gov.replan_health.rollbacks == 0
        assert gov.replan_health.confirmed == 0
        assert graph.name not in gov._trial


# ----------------------------------------------------------------------
# counters / metrics
# ----------------------------------------------------------------------
class TestReplanCounters:
    def test_metrics_mirror_replan_health(self):
        graph = _drift_graph()
        obs = Observability(tracer=NULL_TRACER,
                            metrics=MetricsRegistry())
        gov = AdaptivePresetGovernor([_plan(graph, BUILD_BATCH)],
                                     EVALUATOR, obs=obs,
                                     resilient=True)
        for j in range(4):
            _, ledger = _run_job(gov, graph, DRIFT_BATCH, seed=j)
            gov.observe_job(graph, DRIFT_BATCH, ledger)
        health = gov.replan_health
        assert health.adopted >= 1
        for event, count in health.to_dict().items():
            metric = obs.metrics.counter(
                f"powerlens_replan_{event}_total")
            assert metric.value == count

    def test_invalid_params_rejected(self):
        graph = _drift_graph()
        plans = [_plan(graph, BUILD_BATCH)]
        with pytest.raises(ValueError):
            AdaptivePresetGovernor(plans, EVALUATOR, max_nudge=0)
        with pytest.raises(ValueError):
            AdaptivePresetGovernor(plans, EVALUATOR,
                                   min_improvement_frac=1.0)
        with pytest.raises(ValueError):
            AdaptivePresetGovernor(plans, EVALUATOR, cooldown_jobs=-1)


# ----------------------------------------------------------------------
# plan-validation verdict cache (PresetGovernor satellite)
# ----------------------------------------------------------------------
class TestValidationCache:
    def test_repeated_jobs_hit_cached_verdict(self):
        graph = build_small_cnn()
        plan = _plan(graph, 8)
        gov = PresetGovernor([plan], resilient=True)
        sim = InferenceSimulator(PLATFORM, seed=0)
        job = InferenceJob(graph=graph, batch_size=8, n_batches=3,
                          name="cachejob")
        sim.run([job], gov)
        key = (plan.fingerprint(), graph.fingerprint())
        assert gov._validation_cache == {key: True}

    def test_rejection_verdict_cached_and_counted_once(self):
        graph = build_small_cnn()
        wrong = _plan(graph, 8)
        bad = type(wrong)(graph_name=graph.name, steps=wrong.steps,
                          graph_fingerprint="deadbeef")
        gov = PresetGovernor([bad], resilient=True)
        sim = InferenceSimulator(PLATFORM, seed=0)
        job = InferenceJob(graph=graph, batch_size=8, n_batches=2,
                          name="badjob")
        sim.run([job], gov)
        key = (bad.fingerprint(), graph.fingerprint())
        assert gov._validation_cache[key] is False
        assert gov.health.plans_rejected == 1

    def test_cache_is_fifo_bounded(self):
        graphs = [build_small_cnn(f"cnn_bound_{i}") for i in range(6)]
        plans = [_plan(g, 8) for g in graphs]
        gov = PresetGovernor(plans, resilient=True)
        gov.reset(PLATFORM)
        gov._VALIDATION_CACHE_SIZE = 4
        for g in graphs:
            job = InferenceJob(graph=g, batch_size=8, n_batches=1,
                              name=f"{g.name}_j")
            assert gov._validated_plan(job) is not None
        assert len(gov._validation_cache) == 4
        # the two oldest verdicts were evicted (FIFO)
        evicted = {(plans[i].fingerprint(), graphs[i].fingerprint())
                   for i in range(2)}
        assert not evicted & set(gov._validation_cache)

    def test_plan_fingerprint_stable_and_distinct(self):
        graph = build_small_cnn()
        p1 = _plan(graph, 8)
        p2 = _plan(graph, 8)
        assert p1.fingerprint() == p2.fingerprint()
        p3 = _plan(graph, 16)
        if [s.level for s in p3.steps] != [s.level for s in p1.steps]:
            assert p3.fingerprint() != p1.fingerprint()
