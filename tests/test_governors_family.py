"""Plan families: bucketing, dispatch-time selection, composition.

The contract under test (see ``repro.governors.family``):

* **bucket determinism + totality** — ``FeatureBuckets.bucket_for`` is
  pure arithmetic: every ``(batch >= 1, sparsity in [0, 1))`` maps to
  exactly one in-range bucket, the same one on every call
  (hypothesis-pinned);
* **size-1 degeneration** — a family of one member issues byte-identical
  DVFS commands to a :class:`PresetGovernor` carrying the same plan
  (per-job energy/time/switch-count signatures over simulator runs);
* **member selection** — jobs land on the member whose bucket covers
  their ``(batch, sparsity)``, and the selection counters track swaps;
* **adaptive composition** — ``AdaptivePlanFamilyGovernor`` writes
  nudged plans back to the member that produced the evidence, leaving
  sibling members untouched;
* **validation-cache satellite** — the ``validation_cache_size`` knob
  of the base :class:`PresetGovernor` bounds the verdict cache, counts
  evictions, and the adaptive subclass mirrors the count into
  :class:`ReplanHealth`.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.experiments.adaptive import build_drift_net
from repro.governors import (
    AdaptivePlanFamilyGovernor,
    AdaptivePresetGovernor,
    FeatureBuckets,
    PlanFamily,
    PlanFamilyGovernor,
    PresetGovernor,
    analytic_plan,
    build_plan_family,
)
from repro.hw.analytic import AnalyticEvaluator
from repro.hw.platform import get_platform
from repro.hw.simulator import InferenceJob, InferenceSimulator
from repro.obs.ledger import EnergyLedger

PLATFORM = get_platform("tx2")
EVALUATOR = AnalyticEvaluator(PLATFORM)
BLOCK_SIZE = 4

pytestmark = pytest.mark.family


def _graph():
    return build_drift_net()


def _family(graph, batches=(1, 16), sparsities=(0.0,)):
    return build_plan_family(EVALUATOR, graph, batch_grid=batches,
                             sparsity_grid=sparsities,
                             block_size=BLOCK_SIZE)


def _run_job(gov, graph, batch, seed=0, sparsity=0.0):
    job = InferenceJob(graph=graph, batch_size=batch, n_batches=1,
                       name=f"{graph.name}_j", sparsity=sparsity)
    sim = InferenceSimulator(PLATFORM, seed=seed, keep_trace=True,
                             keep_samples=False)
    result = sim.run([job], gov)
    return (result.trace.total_energy, result.report.total_time,
            result.switch_count), result


# ----------------------------------------------------------------------
# bucket determinism + totality
# ----------------------------------------------------------------------
class TestFeatureBuckets:
    @settings(max_examples=200, deadline=None)
    @given(batch=st.integers(1, 10_000),
           sparsity=st.floats(0.0, 1.0, exclude_max=True,
                              allow_nan=False))
    def test_total_and_deterministic(self, batch, sparsity):
        fb = FeatureBuckets((1, 4, 16, 64), (0.0, 0.25, 0.5))
        b = fb.bucket_for(batch, sparsity)
        assert b == fb.bucket_for(batch, sparsity)
        assert 0 <= b[0] < len(fb.batch_edges)
        assert 0 <= b[1] < len(fb.sparsity_edges)
        # The selected edges are the floor of the inputs on each axis.
        lo_b, lo_s = fb.representative(b)
        assert lo_b <= batch
        assert lo_s <= sparsity
        if b[0] + 1 < len(fb.batch_edges):
            assert batch < fb.batch_edges[b[0] + 1]
        if b[1] + 1 < len(fb.sparsity_edges):
            assert sparsity < fb.sparsity_edges[b[1] + 1]

    @settings(max_examples=50, deadline=None)
    @given(edges=st.lists(st.integers(1, 512), min_size=1, max_size=6,
                          unique=True))
    def test_exact_edges_select_their_own_bucket(self, edges):
        fb = FeatureBuckets(tuple(sorted(edges)))
        for i, edge in enumerate(fb.batch_edges):
            assert fb.bucket_for(edge) == (i, 0)

    def test_below_first_edge_clamps_to_bucket_zero(self):
        fb = FeatureBuckets((4, 16))
        assert fb.bucket_for(1) == (0, 0)
        assert fb.bucket_for(10**9) == (1, 0)

    @pytest.mark.parametrize("batch_edges,sparsity_edges", [
        ((), (0.0,)),               # no batch edges
        ((4, 1), (0.0,)),           # unsorted
        ((1, 1), (0.0,)),           # duplicate
        ((0,), (0.0,)),             # batch < 1
        ((1,), ()),                 # no sparsity edges
        ((1,), (1.0,)),             # sparsity out of range
        ((1,), (-0.1,)),
        ((1,), (0.5, 0.2)),         # unsorted sparsity
    ])
    def test_invalid_edges_rejected(self, batch_edges, sparsity_edges):
        with pytest.raises(ValueError):
            FeatureBuckets(batch_edges, sparsity_edges)


class TestPlanFamily:
    def test_family_must_be_total(self):
        graph = _graph()
        fam = _family(graph)
        missing = dict(fam.members)
        missing.pop(next(iter(missing)))
        with pytest.raises(ValueError, match="every bucket"):
            PlanFamily(graph_name=graph.name, buckets=fam.buckets,
                       members=missing)

    def test_member_graph_name_checked(self):
        graph = _graph()
        fam = _family(graph, batches=(1,))
        with pytest.raises(ValueError, match="not"):
            PlanFamily(graph_name="other", buckets=fam.buckets,
                       members=dict(fam.members))

    def test_grid_point_members_match_analytic_plan(self):
        graph = _graph()
        fam = _family(graph, batches=(1, 16))
        for (bi, sj), member in fam.members.items():
            expected = analytic_plan(
                EVALUATOR, graph, fam.buckets.batch_edges[bi],
                block_size=BLOCK_SIZE,
                sparsity=fam.buckets.sparsity_edges[sj])
            assert member.steps == expected.steps

    def test_member_for_uses_buckets(self):
        graph = _graph()
        fam = _family(graph, batches=(1, 16))
        assert fam.member_for(1) is fam.members[(0, 0)]
        assert fam.member_for(8) is fam.members[(0, 0)]
        assert fam.member_for(16) is fam.members[(1, 0)]
        assert fam.member_for(999) is fam.members[(1, 0)]


# ----------------------------------------------------------------------
# size-1 degeneration: family of one ≡ static preset, byte-identical
# ----------------------------------------------------------------------
class TestSizeOneIdentity:
    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(0, 2**31), batch=st.sampled_from([1, 4, 16]))
    def test_family_of_one_matches_preset(self, seed, batch):
        graph = _graph()
        fam = _family(graph, batches=(batch,))
        assert fam.size == 1
        plan = fam.members[(0, 0)]
        static = PresetGovernor([plan], resilient=True)
        family = PlanFamilyGovernor([fam], resilient=True)
        for j in range(3):
            sig_s, _ = _run_job(static, graph, batch, seed=seed + j)
            sig_f, _ = _run_job(family, graph, batch, seed=seed + j)
            assert sig_f == sig_s
        # One lookup per job, and the single member never swaps out.
        assert family.family_selections == 3
        assert family.family_switches == 0


# ----------------------------------------------------------------------
# member selection at dispatch
# ----------------------------------------------------------------------
class TestMemberSelection:
    def test_selected_member_is_installed_plan(self):
        graph = _graph()
        fam = _family(graph, batches=(1, 16))
        gov = PlanFamilyGovernor([fam], resilient=True)
        _run_job(gov, graph, 16)
        assert gov.plan_for(graph.name) is fam.members[(1, 0)]
        _run_job(gov, graph, 1)
        assert gov.plan_for(graph.name) is fam.members[(0, 0)]
        assert gov.family_selections == 2
        assert gov.family_switches == 1

    def test_family_beats_single_stale_plan_on_drift(self):
        graph = _graph()
        fam = _family(graph, batches=(1, 16))
        stale = PresetGovernor([fam.members[(1, 0)]], resilient=True)
        family = PlanFamilyGovernor([fam], resilient=True)
        e_stale = sum(_run_job(stale, graph, 1, seed=s)[0][0]
                      for s in range(3))
        e_family = sum(_run_job(family, graph, 1, seed=s)[0][0]
                       for s in range(3))
        assert e_family < e_stale

    def test_graph_without_family_falls_back(self):
        graph = _graph()
        fam = _family(graph, batches=(1, 16))
        gov = PlanFamilyGovernor([fam], resilient=True)
        from tests.conftest import build_small_cnn
        other = build_small_cnn("no_family_net")
        sig, _ = _run_job(gov, other, 4)
        # No plan, no selection — runs at the fallback level.
        assert gov.family_selections == 0
        assert gov.plan_for(other.name) is None
        assert sig[0] > 0

    def test_sparsity_axis_selects_sparse_member(self):
        graph = _graph()
        fam = _family(graph, batches=(16,), sparsities=(0.0, 0.5))
        gov = PlanFamilyGovernor([fam], resilient=True)
        _run_job(gov, graph, 16, sparsity=0.7)
        assert gov.plan_for(graph.name) is fam.members[(0, 1)]
        _run_job(gov, graph, 16, sparsity=0.2)
        assert gov.plan_for(graph.name) is fam.members[(0, 0)]

    def test_duplicate_family_names_rejected(self):
        graph = _graph()
        fam = _family(graph, batches=(1,))
        with pytest.raises(ValueError, match="one family"):
            PlanFamilyGovernor([fam, fam])


# ----------------------------------------------------------------------
# adaptive composition: nudges stick per member
# ----------------------------------------------------------------------
class TestAdaptiveComposition:
    def _observe(self, gov, graph, batch, result, sparsity=0.0):
        plan = gov.plan_for(graph.name)
        ledger = EnergyLedger.from_result(
            result, plan=plan, graph=graph, evaluator=EVALUATOR,
            batch_size=batch, sparsity=sparsity)
        return gov.observe_job(graph, batch, ledger, sparsity=sparsity)

    def test_nudge_written_back_to_member(self):
        graph = _graph()
        fam = _family(graph, batches=(1, 16))
        # Sabotage the batch-1 member with the stale batch-16 plan so
        # the drift is visible to the ledger.
        fam.members[(0, 0)] = fam.members[(1, 0)]
        sibling_before = fam.members[(1, 0)]
        gov = AdaptivePlanFamilyGovernor([fam], EVALUATOR,
                                         resilient=True)
        for seed in range(4):
            sig, result = _run_job(gov, graph, 1, seed=seed)
            action = self._observe(gov, graph, 1, result)
            if action == "adopted":
                break
        assert gov.replan_health.adopted >= 1
        # The corrected plan landed in the batch-1 bucket...
        assert fam.members[(0, 0)] is not sibling_before
        # ...and the batch-16 sibling is untouched.
        assert fam.members[(1, 0)] is sibling_before

    def test_zero_drift_family_adaptive_idle(self):
        graph = _graph()
        fam = _family(graph, batches=(1, 16))
        gov = AdaptivePlanFamilyGovernor([fam], EVALUATOR,
                                         resilient=True)
        for batch in (16, 1, 16, 1):
            _, result = _run_job(gov, graph, batch, seed=batch)
            action = self._observe(gov, graph, batch, result)
            assert action in ("none", "frozen")
        assert not gov.replan_health.active


# ----------------------------------------------------------------------
# validation-cache satellite (configurable bound + eviction counters)
# ----------------------------------------------------------------------
class TestValidationCacheKnob:
    @staticmethod
    def _distinct_plans(graph, n):
        """Plans with n distinct fingerprints (one flat level each)."""
        from repro.governors import FrequencyPlan, PlanStep
        return [FrequencyPlan(graph_name=graph.name,
                              steps=[PlanStep(0, level)],
                              graph_fingerprint=graph.fingerprint())
                for level in range(n)]

    def test_ctor_bound_and_eviction_count(self):
        graph = _graph()
        plans = self._distinct_plans(graph, 6)
        from repro.obs.metrics import MetricsRegistry
        gov = PresetGovernor([plans[0]], resilient=True,
                             validation_cache_size=2,
                             metrics=MetricsRegistry())
        for plan in plans:
            gov.add_plan(plan)
            _run_job(gov, graph, 4)
        assert len(gov._validation_cache) <= 2
        assert gov.validation_evictions == len(plans) - 2
        assert gov.metrics.counter(
            "powerlens_runtime_validation_evictions_total").value \
            == gov.validation_evictions

    def test_invalid_bound_rejected(self):
        with pytest.raises(ValueError, match="validation_cache_size"):
            PresetGovernor([], validation_cache_size=0)

    def test_adaptive_mirrors_evictions_into_replan_health(self):
        graph = _graph()
        plans = self._distinct_plans(graph, 4)
        gov = AdaptivePresetGovernor([], EVALUATOR, resilient=True,
                                     validation_cache_size=1)
        for plan in plans:
            gov.add_plan(plan)
            _run_job(gov, graph, 4)
        assert gov.validation_evictions == len(plans) - 1
        assert gov.replan_health.validation_evictions \
            == gov.validation_evictions

    def test_family_default_bound_fits_every_member(self):
        graph = _graph()
        fam = _family(graph, batches=(1, 2, 4, 8, 16))
        gov = PlanFamilyGovernor([fam])
        assert gov._VALIDATION_CACHE_SIZE >= 2 * fam.size
