"""``powerlens serve-sim``: end-to-end CLI behaviour.

Covers the acceptance scenario — a seeded 2-device (TX2 + AGX) Poisson
run is deterministic from the command line (byte-identical event logs
and stdout across invocations) — plus the JSON output mode, the
``--metrics`` file sink, and the fleet ``/metrics`` endpoint served
from an ephemeral (port-0) listener so parallel test runs never
collide.
"""

import json
import urllib.request

import pytest

import repro.cli as cli
from repro.obs import Observability
from repro.obs.exporter import MetricsExporter
from repro.obs.metrics import parse_prometheus_text

pytestmark = pytest.mark.serving

_ARGS = ["serve-sim", "--devices", "tx2,agx", "--rate", "15",
         "--duration", "0.5", "--seed", "7", "--models", "alexnet"]


def test_serve_sim_cli_is_deterministic(tmp_path, capsys):
    """Same flags twice: identical stdout and event-log bytes."""
    log1, log2 = tmp_path / "ev1.jsonl", tmp_path / "ev2.jsonl"
    assert cli.main(_ARGS + ["--event-log", str(log1)]) == 0
    out1 = capsys.readouterr().out
    assert cli.main(_ARGS + ["--event-log", str(log2)]) == 0
    out2 = capsys.readouterr().out
    assert out1 == out2
    assert "serving: poisson arrivals" in out1
    assert log1.read_bytes() == log2.read_bytes()
    events = [json.loads(line)
              for line in log1.read_text().splitlines()]
    assert [e["seq"] for e in events] == list(range(len(events)))
    assert {e["event"] for e in events} >= {"admit", "dispatch",
                                            "complete"}


def test_serve_sim_cli_json_and_metrics_file(tmp_path, capsys):
    metrics_file = tmp_path / "serve.prom"
    rc = cli.main(_ARGS + ["--json", "--policy", "energy",
                           "--metrics", str(metrics_file)])
    assert rc == 0
    report = json.loads(capsys.readouterr().out)
    assert report["policy"] == "energy"
    assert report["conserved"] is True
    assert report["arrived"] == (report["admitted"]
                                 + report["dropped_queue_full"])
    parsed = parse_prometheus_text(metrics_file.read_text())
    assert parsed.counter(
        "powerlens_serving_requests_total").value == report["arrived"]
    assert parsed.counter(
        "powerlens_serving_completed_total").value == report["completed"]


def test_serve_sim_cli_rejects_bad_flags(capsys):
    assert cli.main(["serve-sim", "--devices", " , "]) == 2
    assert "at least one platform preset" in capsys.readouterr().err
    assert cli.main(["serve-sim", "--governor", "warp-drive"]) == 2
    assert "unknown serving governor" in capsys.readouterr().err


def test_fleet_metrics_served_on_ephemeral_port():
    """The fleet run's merged registry is scrapeable over HTTP; binding
    port 0 and reading the bound port back keeps parallel suites from
    colliding on a fixed port."""
    from repro.serving import (DeviceConfig, Fleet, FleetScheduler,
                               SchedulerConfig, make_trace)
    from tests.conftest import build_small_cnn

    obs = Observability.enabled_bundle()
    fleet = Fleet.build([DeviceConfig("tx2-0", "tx2")],
                        governor="powerlens", fleet_seed=2)
    fleet.add_graph(build_small_cnn("small_cnn"))
    trace = make_trace("poisson", rate_rps=30.0, duration_s=0.4,
                       models=["small_cnn"], seed=2)
    result = FleetScheduler(fleet, SchedulerConfig(), obs=obs).run(trace)

    with MetricsExporter(obs, port=0) as exporter:
        assert exporter.port != 0  # ephemeral port read back
        with urllib.request.urlopen(exporter.url + "metrics",
                                    timeout=5.0) as resp:
            body = resp.read().decode("utf-8")
    parsed = parse_prometheus_text(body)
    assert parsed.counter("powerlens_serving_requests_total").value \
        == result.report.arrived
    assert parsed.counter("powerlens_serving_jobs_total").value \
        == len(result.dispatches)


_STORM_ARGS = ["serve-sim", "--devices", "tx2,tx2", "--rate", "20",
               "--duration", "0.5", "--seed", "3", "--models",
               "alexnet", "--fault-profile",
               "telemetry_noise_std=0.8,switch_drop_rate=0.2"]


def test_serve_sim_cli_recovery_flag(tmp_path, capsys):
    """``--recovery`` turns drains into cooldown/probe cycles from the
    command line, deterministically."""
    rc = cli.main(_STORM_ARGS + ["--json"])
    assert rc == 0
    without = json.loads(capsys.readouterr().out)
    log1, log2 = tmp_path / "r1.jsonl", tmp_path / "r2.jsonl"
    rc = cli.main(_STORM_ARGS + ["--json", "--recovery",
                                 "--recovery-cooldown", "0.05",
                                 "--event-log", str(log1)])
    assert rc == 0
    with_recovery = json.loads(capsys.readouterr().out)
    assert with_recovery["conserved"] is True
    assert with_recovery["completed"] >= without["completed"]
    assert cli.main(_STORM_ARGS + ["--json", "--recovery",
                                   "--recovery-cooldown", "0.05",
                                   "--event-log", str(log2)]) == 0
    capsys.readouterr()
    assert log1.read_bytes() == log2.read_bytes()
    kinds = {json.loads(line)["event"]
             for line in log1.read_text().splitlines()}
    assert "cooldown" in kinds and "probe" in kinds


def test_serve_sim_cli_adaptive_governor(capsys):
    """The adaptive governor is selectable and zero-fault output is
    identical to the static preset runtime."""
    base = ["serve-sim", "--devices", "tx2,agx", "--rate", "15",
            "--duration", "0.5", "--seed", "7", "--models", "alexnet"]
    assert cli.main(base + ["--governor", "powerlens"]) == 0
    static_out = capsys.readouterr().out
    assert cli.main(base + ["--governor", "powerlens-adaptive"]) == 0
    adaptive_out = capsys.readouterr().out
    assert "governor powerlens-adaptive" in adaptive_out
    assert (static_out.replace("governor powerlens", "G")
            == adaptive_out.replace("governor powerlens-adaptive", "G"))
