"""Benchmark diff (``powerlens bench-diff``): per-key tolerance
semantics, structural-drift handling, and the CLI exit-code contract
the CI smoke step relies on."""

import json

import pytest

from repro.obs.benchdiff import (
    BenchDiff,
    DEFAULT_REL_TOL,
    diff_benchmarks,
    format_diff,
    load_bench,
    parse_tolerance_specs,
)

pytestmark = pytest.mark.obs

_BASE = {
    "datagen_scaling": {
        "host_cpus": 1,
        "recorded_at": "2026-08-06T15:17:08",
        "n_networks": 100,
        "n_blocks": 1307,
        "serial": {"n_jobs": 1, "wall_time_s": 7.193,
                   "networks_per_s": 13.902},
    },
}


def _variant(**leaf_overrides):
    new = json.loads(json.dumps(_BASE))
    new["datagen_scaling"]["serial"].update(leaf_overrides)
    return new


class TestDiffSemantics:
    def test_identical_payloads_are_ok(self):
        diff = diff_benchmarks(_BASE, json.loads(json.dumps(_BASE)))
        assert diff.ok
        assert diff.failures == [] and diff.warnings == []

    def test_environment_stamps_are_ignored(self):
        new = json.loads(json.dumps(_BASE))
        new["datagen_scaling"]["host_cpus"] = 64
        new["datagen_scaling"]["recorded_at"] = "2030-01-01T00:00:00"
        new["datagen_scaling"]["pool_speedup_note"] = "whatever"
        assert diff_benchmarks(_BASE, new).ok

    def test_numeric_drift_within_tolerance_passes(self):
        assert diff_benchmarks(_BASE, _variant(wall_time_s=9.0)).ok

    def test_numeric_drift_beyond_tolerance_fails(self):
        diff = diff_benchmarks(_BASE, _variant(wall_time_s=72.0))
        assert not diff.ok
        [row] = diff.failures
        assert row.path == "datagen_scaling.serial.wall_time_s"
        assert "tolerance" in row.note

    def test_exact_keys_fail_on_any_change(self):
        new = json.loads(json.dumps(_BASE))
        new["datagen_scaling"]["n_blocks"] = 1308  # within any rel_tol
        diff = diff_benchmarks(_BASE, new, rel_tol=10.0)
        assert not diff.ok
        assert diff.failures[0].note == "exact key differs"

    def test_type_change_fails(self):
        diff = diff_benchmarks(_BASE, _variant(wall_time_s="7.193"))
        assert not diff.ok
        assert "type changed" in diff.failures[0].note

    def test_structural_drift_warns_then_fails_under_strict(self):
        new = json.loads(json.dumps(_BASE))
        del new["datagen_scaling"]["serial"]["networks_per_s"]
        new["datagen_scaling"]["extra_section"] = {"x": 1}
        diff = diff_benchmarks(_BASE, new)
        assert diff.ok and len(diff.warnings) == 2
        strict = diff_benchmarks(_BASE, new, strict=True)
        assert not strict.ok

    def test_per_key_tolerance_overrides(self):
        new = _variant(wall_time_s=7.193 * 1.4)  # inside default 0.5
        tight = diff_benchmarks(_BASE, new,
                                tolerances={"wall_time_s": 0.1})
        assert not tight.ok
        by_path = diff_benchmarks(
            _BASE, new,
            tolerances={"datagen_scaling.serial.wall_time_s": 0.1})
        assert not by_path.ok
        # Overriding an unrelated key leaves the default in force.
        assert diff_benchmarks(_BASE, new,
                               tolerances={"networks_per_s": 0.01}).ok

    def test_subpath_tolerance_covers_nested_dict(self):
        base = json.loads(json.dumps(_BASE))
        base["datagen_scaling"]["serial"]["stage_seconds"] = {
            "distance": 1.0, "cluster": 2.0}
        new = json.loads(json.dumps(base))
        new["datagen_scaling"]["serial"]["stage_seconds"]["distance"] = 4.0
        # 75% relative drift: outside the default 0.5, inside a 2.0
        # override addressed by the interior key name.
        assert not diff_benchmarks(base, new).ok
        assert diff_benchmarks(
            base, new, tolerances={"stage_seconds": 2.0}).ok
        # Full-path and leaf-name overrides still win over the sub-path.
        tight = diff_benchmarks(
            base, new, tolerances={"stage_seconds": 2.0,
                                   "distance": 0.1})
        assert not tight.ok

    def test_zero_values_compare_equal(self):
        assert diff_benchmarks({"a": {"v": 0.0}}, {"a": {"v": 0}}).ok

    def test_format_lists_failures_and_verdict(self):
        diff = diff_benchmarks(_BASE, _variant(wall_time_s=72.0))
        text = format_diff(diff)
        assert "FAIL datagen_scaling.serial.wall_time_s" in text
        assert text.endswith("FAIL")
        verbose = format_diff(diff, verbose=True)
        assert "  OK" in verbose

    def test_parse_tolerance_specs(self):
        assert parse_tolerance_specs(["speedup=0.25", "a.b=1"]) == \
            {"speedup": 0.25, "a.b": 1.0}
        with pytest.raises(ValueError, match="tolerance spec"):
            parse_tolerance_specs(["nonsense"])

    def test_rejects_negative_tolerance_and_non_object_files(
            self, tmp_path):
        with pytest.raises(ValueError, match="rel_tol"):
            diff_benchmarks({}, {}, rel_tol=-1)
        bad = tmp_path / "b.json"
        bad.write_text("[1, 2]")
        with pytest.raises(ValueError, match="JSON object"):
            load_bench(bad)


class TestBenchDiffCli:
    def _write(self, tmp_path, name, payload):
        path = tmp_path / name
        path.write_text(json.dumps(payload))
        return str(path)

    def test_self_compare_exits_zero(self, tmp_path, capsys):
        from repro.cli import main
        path = self._write(tmp_path, "a.json", _BASE)
        assert main(["bench-diff", path, path]) == 0
        assert "-> OK" in capsys.readouterr().out

    def test_checked_in_benchmark_self_compares_clean(self, capsys):
        """The CI smoke step: the repo's own BENCH_datagen.json must
        diff cleanly against itself."""
        from pathlib import Path
        from repro.cli import main
        bench = Path(__file__).resolve().parent.parent / \
            "BENCH_datagen.json"
        assert bench.exists()
        assert main(["bench-diff", str(bench), str(bench)]) == 0

    def test_regression_exits_one(self, tmp_path, capsys):
        from repro.cli import main
        old = self._write(tmp_path, "old.json", _BASE)
        new = self._write(tmp_path, "new.json",
                          _variant(wall_time_s=72.0))
        assert main(["bench-diff", old, new]) == 1
        assert "FAIL" in capsys.readouterr().out

    def test_strict_and_tolerance_flags(self, tmp_path):
        from repro.cli import main
        drifted = json.loads(json.dumps(_BASE))
        drifted["datagen_scaling"]["new_metric"] = 1.0
        old = self._write(tmp_path, "old.json", _BASE)
        new = self._write(tmp_path, "new.json", drifted)
        assert main(["bench-diff", old, new]) == 0
        assert main(["bench-diff", old, new, "--strict"]) == 1
        within = self._write(tmp_path, "within.json",
                             _variant(wall_time_s=8.0))
        assert main(["bench-diff", old, within,
                     "--tolerance", "wall_time_s=0.01"]) == 1

    def test_unreadable_input_exits_two(self, tmp_path, capsys):
        from repro.cli import main
        assert main(["bench-diff", str(tmp_path / "nope.json"),
                     str(tmp_path / "nope.json")]) == 2
        assert "bench-diff:" in capsys.readouterr().err
