"""Golden-regression tests: the canonical JSON exports of the headline
experiments (Table 1, Table 2, model accuracy) at a small fixed seed are
pinned byte-for-byte under ``tests/goldens/``.

Any change to the dataset generator, the labeling sweep, the prediction
models, the clustering post-processing, the governors or the simulator
that shifts a reported number past the canonical 10-significant-digit
rounding shows up here as a diff against the fixture — deliberate
changes regenerate the fixtures with::

    pytest tests/test_goldens.py --update-goldens
"""

from pathlib import Path

import pytest

from repro.core import PowerLens, PowerLensConfig
from repro.experiments.accuracy import run_accuracy
from repro.experiments.common import ExperimentContext
from repro.experiments.export import canonical_json, canonical_records
from repro.experiments.table1 import run_table1
from repro.experiments.table2 import run_table2
from repro.hw import jetson_tx2

GOLDEN_DIR = Path(__file__).parent / "goldens"

#: Small-corpus fit shared by every golden (matches the
#: tests/test_experiments.py context so the session pays for it once).
_N_NETWORKS, _SEED = 20, 3
_MODELS = ["alexnet", "resnet18"]


@pytest.fixture(scope="module")
def golden_ctx():
    platform = jetson_tx2()
    lens = PowerLens(platform, PowerLensConfig(
        n_networks=_N_NETWORKS, seed=_SEED))
    lens.fit()
    return ExperimentContext(platform=platform, lens=lens)


def _check_golden(name: str, result, update: bool) -> None:
    path = GOLDEN_DIR / f"{name}.json"
    text = canonical_json(result) + "\n"
    if update:
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(text)
        return
    assert path.exists(), (
        f"golden fixture {path} missing — generate it with "
        f"pytest tests/test_goldens.py --update-goldens")
    assert text == path.read_text(), (
        f"{name} output drifted from its golden fixture; if the change "
        f"is intended, rerun with --update-goldens and commit the diff")


def test_canonical_records_are_byte_stable(golden_ctx):
    """The canonical form itself must be idempotent: rounding twice
    changes nothing, and the JSON text is reproducible in-process."""
    result = run_table1("tx2", models=["alexnet"], n_runs=1,
                        context=golden_ctx)
    once = canonical_json(result)
    assert canonical_json(result) == once
    for record in canonical_records(result):
        for value in record.values():
            if isinstance(value, float):
                assert value == float(f"{value:.10g}")


def test_table1_golden(golden_ctx, update_goldens):
    result = run_table1("tx2", models=_MODELS, n_runs=2,
                        context=golden_ctx)
    _check_golden("table1", result, update_goldens)


def test_table2_golden(golden_ctx, update_goldens):
    result = run_table2("tx2", models=_MODELS, n_runs=2,
                        context=golden_ctx)
    _check_golden("table2", result, update_goldens)


def test_accuracy_golden(golden_ctx, update_goldens):
    result = run_accuracy(lens=golden_ctx.lens)
    _check_golden("accuracy", result, update_goldens)
