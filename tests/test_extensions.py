"""Extension tests: CPU DVFS planning, batch co-optimization, platform
calibration (the paper's section-5 future work)."""

import numpy as np
import pytest

from repro.extensions import (
    BatchChoice,
    CalibrationSample,
    best_batch_size,
    batch_sweep,
    cpu_phase_energy,
    fit_power_model,
    optimal_cpu_level,
    PowerLensCGGovernor,
)
from repro.extensions.calibrate import synthesize_samples
from repro.extensions.cpu_dvfs import powerlens_cg_governor
from repro.hw import InferenceJob, InferenceSimulator
from repro.models import build_model


class TestCpuDvfs:
    def test_phase_energy_positive(self, tx2):
        e, t = cpu_phase_energy(tx2, 2e9, 3)
        assert e > 0 and t > 0

    def test_level_bounds(self, tx2):
        with pytest.raises(IndexError):
            cpu_phase_energy(tx2, 1e9, 99)

    def test_optimal_level_feasible(self, tx2):
        n = len(tx2.cpu.freq_levels)
        for slack in (0.0, 0.25, 1.0):
            lvl = optimal_cpu_level(tx2, 2e9, latency_slack=slack)
            assert 0 <= lvl < n
            _, t = cpu_phase_energy(tx2, 2e9, lvl)
            _, t_max = cpu_phase_energy(tx2, 2e9, n - 1)
            assert t <= (1 + slack) * t_max + 1e-12

    def test_zero_slack_pins_max(self, tx2):
        assert optimal_cpu_level(tx2, 2e9, latency_slack=0.0) == \
            len(tx2.cpu.freq_levels) - 1

    def test_planned_level_saves_cpu_energy(self, fitted_lens, tx2):
        """PowerLens-C+G must reduce total energy versus plain PowerLens
        on a preprocessing-heavy workload."""
        graph = build_model("resnet18")
        job = InferenceJob(graph=graph, batch_size=16, n_batches=4,
                           cpu_work_per_image=4e8)
        plain = fitted_lens.governor([graph])
        cg = powerlens_cg_governor(fitted_lens, [graph],
                                   cpu_work_per_image=4e8, batch_size=16)
        assert isinstance(cg, PowerLensCGGovernor)
        r_plain = InferenceSimulator(tx2, keep_trace=False).run(
            [job], plain)
        r_cg = InferenceSimulator(tx2, keep_trace=False).run([job], cg)
        assert r_cg.trace.cpu_energy < r_plain.trace.cpu_energy
        assert r_cg.report.energy_efficiency > \
            r_plain.report.energy_efficiency * 0.98


class TestBatching:
    @pytest.fixture(scope="class")
    def graph(self):
        return build_model("resnet18")

    def test_sweep_covers_candidates(self, tx2, graph):
        choices = batch_sweep(tx2, graph, candidates=(1, 4, 16))
        assert [c.batch_size for c in choices] == [1, 4, 16]
        for c in choices:
            assert c.energy_per_image > 0
            assert c.energy_efficiency == pytest.approx(
                1 / c.energy_per_image)

    def test_larger_batches_amortize_overhead(self, tx2, graph):
        choices = batch_sweep(tx2, graph, candidates=(1, 32))
        assert choices[1].energy_per_image < choices[0].energy_per_image

    def test_latency_cap_respected(self, tx2, graph):
        choice = best_batch_size(tx2, graph, candidates=(1, 8, 64),
                                 max_batch_latency=0.5)
        assert choice.batch_latency <= 0.5 or choice.batch_size == 1

    def test_uncapped_prefers_largest_ee(self, tx2, graph):
        choices = batch_sweep(tx2, graph)
        best = best_batch_size(tx2, graph)
        assert best.energy_efficiency == max(
            c.energy_efficiency for c in choices)

    def test_invalid_batch(self, tx2, graph):
        with pytest.raises(ValueError):
            batch_sweep(tx2, graph, candidates=(0,))


class TestCalibration:
    def test_exact_recovery_without_noise(self, tx2):
        samples = synthesize_samples(tx2, n=50, noise_w=0.0, seed=0)
        result = fit_power_model(tx2, samples)
        assert result.leak_w_per_v == pytest.approx(tx2.leak_w_per_v,
                                                    rel=1e-6)
        assert result.c_eff == pytest.approx(tx2.c_eff, rel=1e-6)
        assert result.stall_power_fraction == pytest.approx(
            tx2.stall_power_fraction, rel=1e-6)
        assert result.dram_energy_per_byte == pytest.approx(
            tx2.dram_energy_per_byte, rel=1e-6)
        assert result.rms_error_w < 1e-9

    def test_noisy_recovery_close(self, tx2):
        samples = synthesize_samples(tx2, n=200, noise_w=0.2, seed=1)
        result = fit_power_model(tx2, samples)
        assert result.c_eff == pytest.approx(tx2.c_eff, rel=0.1)
        assert result.rms_error_w < 0.5

    def test_apply_returns_updated_platform(self, tx2):
        samples = synthesize_samples(tx2, n=50)
        result = fit_power_model(tx2, samples)
        fitted = result.apply(tx2)
        assert fitted.c_eff == pytest.approx(result.c_eff)
        assert fitted.gpu_freq_levels == tx2.gpu_freq_levels

    def test_needs_enough_samples(self, tx2):
        with pytest.raises(ValueError):
            fit_power_model(tx2, synthesize_samples(tx2, n=3))

    def test_rank_deficiency_detected(self, tx2):
        # All samples at one frequency with the same mix: unfittable.
        samples = [CalibrationSample(freq=tx2.f_max, compute_util=1.0,
                                     byte_rate=0.0, power_w=10.0)] * 10
        with pytest.raises(ValueError, match="span"):
            fit_power_model(tx2, samples)

    def test_invalid_util_rejected(self, tx2):
        bad = [CalibrationSample(tx2.f_max, 1.5, 0.0, 10.0)] * 5
        with pytest.raises(ValueError, match="compute_util"):
            fit_power_model(tx2, bad)
