"""Batch-scaling interpolation: hypothesis coverage of the edge cases.

``repro.extensions.batching.interpolate_choice`` estimates per-image
cost for batch sizes the calibration sweep never ran.  Properties
pinned here:

* **totality + determinism** — any ``batch >= 1`` yields exactly one
  estimate, the same on every call, for any non-empty calibration set;
* **clamping** — batch 1 below the calibrated range and batches above
  the calibration max clamp to the nearest endpoint instead of
  extrapolating;
* **exact hits** — a calibrated batch size returns the calibrated
  choice object unchanged;
* **bracketing** — between two calibrated points the per-image energy
  and latency estimates lie within the bracketing values, even when
  the calibrated tables are non-monotone in batch size;
* **validation** — empty choice lists, duplicate calibrated batches
  and batches < 1 are rejected.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.extensions.batching import (
    BatchChoice,
    batch_sweep,
    best_batch_size,
    family_batch_grid,
    interpolate_choice,
)
from repro.hw.platform import get_platform
from tests.conftest import build_small_cnn

pytestmark = pytest.mark.family

PLATFORM = get_platform("tx2")


def _choice(batch, energy, latency, level=3):
    return BatchChoice(batch_size=batch, level=level,
                       energy_per_image=energy,
                       latency_per_image=latency,
                       batch_latency=latency * batch)


#: Strategy: calibration tables with unique batch sizes and finite,
#: possibly non-monotone per-image costs.
_tables = st.lists(
    st.tuples(st.integers(1, 512),
              st.floats(1e-6, 1e3, allow_nan=False,
                        allow_infinity=False),
              st.floats(1e-6, 1e3, allow_nan=False,
                        allow_infinity=False),
              st.integers(0, 7)),
    min_size=1, max_size=8,
    unique_by=lambda t: t[0],
).map(lambda rows: [_choice(b, e, lt, lv) for b, e, lt, lv in rows])


class TestInterpolateProperties:
    @settings(max_examples=200, deadline=None)
    @given(choices=_tables, batch=st.integers(1, 1024))
    def test_total_deterministic_and_bounded(self, choices, batch):
        a = interpolate_choice(choices, batch)
        b = interpolate_choice(choices, batch)
        assert (a.batch_size, a.level, a.energy_per_image,
                a.latency_per_image) \
            == (b.batch_size, b.level, b.energy_per_image,
                b.latency_per_image)
        assert a.batch_size == batch
        energies = [c.energy_per_image for c in choices]
        latencies = [c.latency_per_image for c in choices]
        # Linear interpolation between calibrated points (and clamping
        # outside them) can never leave the calibrated envelope — even
        # on non-monotone tables.
        assert min(energies) <= a.energy_per_image <= max(energies)
        assert min(latencies) <= a.latency_per_image <= max(latencies)
        assert a.level in {c.level for c in choices}
        assert a.batch_latency == a.latency_per_image * batch

    @settings(max_examples=100, deadline=None)
    @given(choices=_tables)
    def test_exact_hits_return_calibrated_choice(self, choices):
        for c in choices:
            assert interpolate_choice(choices, c.batch_size) is c

    @settings(max_examples=100, deadline=None)
    @given(choices=_tables, batch=st.integers(1, 2048))
    def test_clamps_outside_calibrated_range(self, choices, batch):
        lo = min(choices, key=lambda c: c.batch_size)
        hi = max(choices, key=lambda c: c.batch_size)
        est = interpolate_choice(choices, batch)
        if batch <= lo.batch_size:
            assert est.energy_per_image == lo.energy_per_image
            assert est.latency_per_image == lo.latency_per_image
            assert est.level == lo.level
        elif batch >= hi.batch_size:
            assert est.energy_per_image == hi.energy_per_image
            assert est.latency_per_image == hi.latency_per_image
            assert est.level == hi.level

    def test_bracketing_linear_midpoint(self):
        choices = [_choice(2, 10.0, 1.0, level=1),
                   _choice(6, 2.0, 3.0, level=5)]
        est = interpolate_choice(choices, 4)
        assert est.energy_per_image == pytest.approx(6.0)
        assert est.latency_per_image == pytest.approx(2.0)
        # Midpoint tie on the level goes to the smaller batch.
        assert est.level == 1
        assert interpolate_choice(choices, 5).level == 5

    def test_non_monotone_tables_stay_finite(self):
        # Energy dips then spikes: interpolation must track segments,
        # not assume global monotonicity.
        choices = [_choice(1, 8.0, 2.0), _choice(4, 1.0, 1.0),
                   _choice(16, 9.0, 4.0)]
        low = interpolate_choice(choices, 2)
        high = interpolate_choice(choices, 10)
        assert 1.0 <= low.energy_per_image <= 8.0
        assert 1.0 <= high.energy_per_image <= 9.0

    def test_validation(self):
        with pytest.raises(ValueError, match="calibrated"):
            interpolate_choice([], 4)
        with pytest.raises(ValueError, match="positive"):
            interpolate_choice([_choice(2, 1.0, 1.0)], 0)
        dup = [_choice(2, 1.0, 1.0), _choice(2, 2.0, 2.0)]
        with pytest.raises(ValueError, match="duplicate"):
            interpolate_choice(dup, 3)


class TestSweepSparsity:
    def test_sweep_accepts_sparsity(self):
        graph = build_small_cnn()
        dense = batch_sweep(PLATFORM, graph, candidates=(1, 8))
        sparse = batch_sweep(PLATFORM, graph, candidates=(1, 8),
                             sparsity=0.5)
        assert len(dense) == len(sparse) == 2
        for d, s in zip(dense, sparse):
            assert s.energy_per_image < d.energy_per_image

    def test_best_batch_size_sparsity_passthrough(self):
        graph = build_small_cnn()
        dense = best_batch_size(PLATFORM, graph, candidates=(1, 4, 8))
        sparse = best_batch_size(PLATFORM, graph, candidates=(1, 4, 8),
                                 sparsity=0.5)
        assert sparse.energy_per_image < dense.energy_per_image

    def test_family_batch_grid_collapses_stable_levels(self):
        graph = build_small_cnn()
        candidates = (1, 2, 4, 8, 16, 32)
        grid = family_batch_grid(PLATFORM, graph, candidates=candidates)
        assert grid
        assert grid[0] == 1
        assert grid == sorted(set(grid))
        assert set(grid) <= set(candidates)
        # Consecutive candidates sharing an optimal level collapse into
        # one grid point: the grid is never larger than the sweep, and
        # each kept point starts a new level segment.
        choices = {c.batch_size: c.level
                   for c in batch_sweep(PLATFORM, graph,
                                        candidates=candidates)}
        ordered = sorted(candidates)
        for a, b in zip(ordered, ordered[1:]):
            if choices[a] == choices[b]:
                assert b not in grid or any(
                    choices[c] != choices[a]
                    for c in ordered[ordered.index(a) + 1:
                                     ordered.index(b)])
