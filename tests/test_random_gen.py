"""Random DNN generator tests."""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.graph import graph_metrics, validate_graph
from repro.graph.ops import OpType
from repro.models import RandomDNNConfig, RandomDNNGenerator


class TestDeterminism:
    def test_same_seed_same_graphs(self):
        a = RandomDNNGenerator(seed=123).generate_many(3)
        b = RandomDNNGenerator(seed=123).generate_many(3)
        for ga, gb in zip(a, b):
            assert [n.op for n in ga.nodes()] == [n.op for n in gb.nodes()]
            assert [n.output_shape for n in ga.nodes()] == \
                [n.output_shape for n in gb.nodes()]

    def test_different_seeds_differ(self):
        a = RandomDNNGenerator(seed=1).generate()
        b = RandomDNNGenerator(seed=2).generate()
        assert [n.op for n in a.nodes()] != [n.op for n in b.nodes()] or \
            [n.output_shape for n in a.nodes()] != \
            [n.output_shape for n in b.nodes()]

    def test_names_unique_across_generations(self):
        gen = RandomDNNGenerator(seed=0)
        names = {gen.generate().name for _ in range(5)}
        assert len(names) == 5


class TestValidity:
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(seed=st.integers(0, 10_000))
    def test_generated_graphs_always_valid(self, seed):
        """Property: every generated network validates and ends in a
        classifier head of the configured width."""
        g = RandomDNNGenerator(seed=seed).generate()
        errors = [i for i in validate_graph(g) if i.severity == "error"]
        assert errors == []
        head = g.compute_nodes()[-1]
        assert head.op is OpType.LINEAR
        assert head.output_shape == (1000,)

    def test_config_respected(self):
        cfg = RandomDNNConfig(min_stages=1, max_stages=1,
                              min_blocks_per_stage=1,
                              max_blocks_per_stage=1,
                              allow_transformer=False,
                              num_classes=7)
        g = RandomDNNGenerator(cfg, seed=0).generate()
        assert g.compute_nodes()[-1].output_shape == (7,)
        assert not any(n.op is OpType.ATTENTION for n in g.nodes())


class TestDiversity:
    def test_population_varies_in_size(self):
        gen = RandomDNNGenerator(seed=42)
        flops = [graph_metrics(g).total_flops
                 for g in gen.generate_many(20)]
        assert max(flops) / min(flops) > 3

    def test_transformer_stage_appears(self):
        gen = RandomDNNGenerator(seed=0)
        found = False
        for _ in range(40):
            g = gen.generate()
            if any(n.op is OpType.ATTENTION for n in g.nodes()):
                found = True
                break
        assert found, "no transformer stage in 40 generations"

    def test_multiple_stage_kinds_appear(self):
        gen = RandomDNNGenerator(seed=3)
        ops = set()
        for _ in range(20):
            ops.update(n.op for n in gen.generate().nodes())
        assert OpType.ADD in ops        # residual stages
        assert OpType.CONV2D in ops
        # depthwise separable stages produce grouped convs
        from repro.graph.ops import OpCategory
        gen2 = RandomDNNGenerator(seed=3)
        cats = set()
        for _ in range(20):
            cats.update(n.category for n in gen2.generate().nodes())
        assert OpCategory.DWCONV in cats
