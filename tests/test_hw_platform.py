"""Platform specification tests, pinned against the paper's section 3.1
hardware description."""

import pytest

from repro.hw import (
    CpuSpec,
    PlatformSpec,
    get_platform,
    jetson_agx_xavier,
    jetson_tx2,
)


class TestPaperFrequencyTables:
    def test_tx2_has_13_levels(self):
        p = jetson_tx2()
        assert p.n_levels == 13

    def test_tx2_range_matches_paper(self):
        p = jetson_tx2()
        assert p.f_min == pytest.approx(114.75e6)
        assert p.f_max == pytest.approx(1300.5e6)

    def test_agx_has_14_levels(self):
        p = jetson_agx_xavier()
        assert p.n_levels == 14

    def test_agx_range_matches_paper(self):
        p = jetson_agx_xavier()
        assert p.f_min == pytest.approx(114.75e6)
        assert p.f_max == pytest.approx(1377.0e6)

    def test_ladders_strictly_ascending(self):
        for p in (jetson_tx2(), jetson_agx_xavier()):
            freqs = p.gpu_freq_levels
            assert all(b > a for a, b in zip(freqs, freqs[1:]))


class TestLevelArithmetic:
    def test_freq_of_level_bounds(self, tx2):
        with pytest.raises(IndexError):
            tx2.freq_of_level(-1)
        with pytest.raises(IndexError):
            tx2.freq_of_level(tx2.n_levels)

    def test_level_of_freq_roundtrip(self, tx2):
        for lvl in range(tx2.n_levels):
            assert tx2.level_of_freq(tx2.freq_of_level(lvl)) == lvl

    def test_level_of_freq_closest(self, tx2):
        assert tx2.level_of_freq(0.0) == 0
        assert tx2.level_of_freq(1e12) == tx2.max_level

    def test_clamp_level(self, tx2):
        assert tx2.clamp_level(-5) == 0
        assert tx2.clamp_level(999) == tx2.max_level
        assert tx2.clamp_level(3) == 3


class TestVoltageCurve:
    def test_voltage_monotonically_increasing(self):
        for p in (jetson_tx2(), jetson_agx_xavier()):
            volts = [p.voltage(f) for f in p.gpu_freq_levels]
            assert all(b > a for a, b in zip(volts, volts[1:]))

    def test_voltage_endpoints(self, tx2):
        assert tx2.voltage(tx2.f_min) == pytest.approx(tx2.v_min)
        assert tx2.voltage(tx2.f_max) == pytest.approx(tx2.v_max)

    def test_voltage_clamped_outside_ladder(self, tx2):
        assert tx2.voltage(1.0) == pytest.approx(tx2.v_min)
        assert tx2.voltage(1e12) == pytest.approx(tx2.v_max)

    def test_agx_top_steeper_than_tx2(self):
        """The AGX's wider V range drives its larger Table-1(b) gains."""
        tx2, agx = jetson_tx2(), jetson_agx_xavier()
        ratio_tx2 = tx2.voltage(tx2.f_max) / tx2.voltage(tx2.f_min)
        ratio_agx = agx.voltage(agx.f_max) / agx.voltage(agx.f_min)
        assert ratio_agx > ratio_tx2

    def test_cpu_voltage_curve(self, tx2):
        cpu = tx2.cpu
        assert cpu.voltage(cpu.f_min) == pytest.approx(cpu.v_min)
        assert cpu.voltage(cpu.f_max) == pytest.approx(cpu.v_max)


class TestBandwidth:
    def test_bandwidth_increases_with_freq(self, tx2):
        bws = [tx2.bandwidth_at(f) for f in tx2.gpu_freq_levels]
        assert all(b > a for a, b in zip(bws, bws[1:]))

    def test_bandwidth_peak_at_fmax(self, tx2):
        assert tx2.bandwidth_at(tx2.f_max) == \
            pytest.approx(tx2.mem_bandwidth)

    def test_bandwidth_floor(self, tx2):
        floor = tx2.mem_bandwidth * (1 - tx2.bw_freq_sensitivity)
        assert tx2.bandwidth_at(0) >= floor * 0.99


class TestConstruction:
    def test_presets_by_name(self):
        assert get_platform("tx2").name == "jetson_tx2"
        assert get_platform("agx").name == "jetson_agx_xavier"
        assert get_platform("JETSON_TX2").name == "jetson_tx2"

    def test_unknown_preset(self):
        with pytest.raises(KeyError):
            get_platform("rtx4090")

    def test_needs_two_levels(self):
        with pytest.raises(ValueError):
            PlatformSpec(name="bad", gpu_freq_levels=(1e9,),
                         cpu=CpuSpec(freq_levels=(1e9, 2e9)))

    def test_descending_ladder_rejected(self):
        with pytest.raises(ValueError):
            PlatformSpec(name="bad", gpu_freq_levels=(2e9, 1e9),
                         cpu=CpuSpec(freq_levels=(1e9, 2e9)))

    def test_with_overrides(self, tx2):
        p2 = tx2.with_overrides(board_power=9.0)
        assert p2.board_power == 9.0
        assert tx2.board_power != 9.0
        assert p2.gpu_freq_levels == tx2.gpu_freq_levels
