"""Cross-governor / cross-policy conformance of the serving layer.

Every governor the registry knows (plus the preset ``powerlens``
planner) must serve the same trace through every queueing policy with:

* request conservation,
* ledger-reconciled energy — the fleet total equals the summed
  per-device :class:`~repro.obs.ledger.EnergyLedger` attributions
  within ``RECONCILIATION_TOLERANCE`` (1e-9 relative), and every
  individual dispatch reconciled too,
* the drain invariant: once a device crosses its anomaly threshold the
  scheduler never routes another job to it.
"""

from __future__ import annotations

import math

import pytest

from repro.obs.ledger import RECONCILIATION_TOLERANCE
from repro.serving import (
    DeviceConfig,
    Fleet,
    FleetScheduler,
    SERVING_GOVERNORS,
    SchedulerConfig,
    make_policy,
    make_trace,
)
from repro.serving.arrivals import Request
from tests.conftest import build_small_cnn

pytestmark = pytest.mark.serving

MODEL = "small_cnn"
POLICIES = ("fifo", "slo", "energy")


def _serve(governor: str, policy: str, seed: int = 11, rate: float = 30.0,
           duration: float = 0.5, configs=None, fleet=None,
           slo: float = math.inf):
    if fleet is None:
        configs = configs or [DeviceConfig("tx2-0", "tx2"),
                              DeviceConfig("agx-1", "agx")]
        fleet = Fleet.build(configs, governor=governor, fleet_seed=seed)
        fleet.add_graph(build_small_cnn(MODEL))
    trace = make_trace("poisson", rate_rps=rate, duration_s=duration,
                       models=[MODEL], seed=seed, slo_latency_s=slo)
    return FleetScheduler(fleet, SchedulerConfig(policy=policy)).run(trace)


@pytest.mark.parametrize("policy", POLICIES)
@pytest.mark.parametrize("governor", SERVING_GOVERNORS)
def test_governor_policy_matrix(governor, policy):
    """The full matrix: conservation + ledger reconciliation for every
    governor under every policy."""
    result = _serve(governor, policy)
    report = result.report
    assert report.completed > 0
    assert report.governor == governor
    assert report.policy == make_policy(policy).name
    assert report.conserved
    assert report.energy_reconciled, (
        f"{governor}/{policy}: ledger drift "
        f"{report.energy_rel_err:.3e} > {RECONCILIATION_TOLERANCE:.0e}")
    # Reconciliation holds dispatch-by-dispatch, not just in aggregate.
    assert result.dispatches
    assert all(r.ledger_ok for r in result.dispatches)
    # The report's fleet total really is the sum of device ledgers.
    ledger_sum = math.fsum(d.ledger_energy_j for d in report.devices)
    assert report.ledger_energy_j == ledger_sum


def _drain_after_first_job(device):
    """Force one anomaly onto ``device`` after its first completed job,
    through the same counter the real detector feeds."""
    original = device.execute

    def execute(job, dispatch_seq):
        record = original(job, dispatch_seq)
        if device.anomaly_count == 0:
            device.anomaly_count += 1
            record.new_anomalies += 1
        return record

    device.execute = execute


def test_drain_never_routes_after_anomaly_flag():
    """After a device's drain event, no dispatch event names it."""
    fleet = Fleet.build([DeviceConfig("tx2-0", "tx2"),
                         DeviceConfig("agx-1", "agx")],
                        governor="powerlens", fleet_seed=3)
    fleet.add_graph(build_small_cnn(MODEL))
    _drain_after_first_job(fleet.devices[0])
    result = _serve("powerlens", "fifo", seed=3, rate=60.0,
                    duration=0.8, fleet=fleet)

    drained = [e for e in result.events if e["event"] == "drain"]
    assert [e["device"] for e in drained] == ["tx2-0"]
    assert fleet.devices[0].drained and not fleet.devices[1].drained
    drain_seq = drained[0]["seq"]
    late_dispatches = [e for e in result.events
                       if e["event"] == "dispatch"
                       and e["seq"] > drain_seq]
    assert late_dispatches, "trace ended before the drain mattered"
    assert all(e["device"] != "tx2-0" for e in late_dispatches)
    assert result.report.conserved
    assert result.metrics.counter(
        "powerlens_serving_drains_total").value == 1


def test_whole_fleet_drained_drops_unserviceable():
    """With every device drained, queued requests are accounted as
    ``unserviceable`` — never silently lost."""
    fleet = Fleet.build([DeviceConfig("tx2-0", "tx2")],
                        governor="powerlens", fleet_seed=9)
    fleet.add_graph(build_small_cnn(MODEL))
    _drain_after_first_job(fleet.devices[0])
    result = _serve("powerlens", "fifo", seed=9, rate=50.0,
                    duration=0.5, fleet=fleet)
    report = result.report
    assert fleet.devices[0].drained
    assert report.dropped_unserviceable > 0
    assert report.conserved
    assert report.arrived == (report.completed + report.dropped)


def test_expired_requests_drop_before_dispatch():
    """An SLO shorter than any possible service time expires whatever
    queues behind the first batch; conservation still holds."""
    result = _serve("powerlens", "slo", seed=4, rate=80.0,
                    duration=0.4, slo=1e-3)
    report = result.report
    assert report.dropped_expired > 0
    assert report.conserved
    drop_events = [e for e in result.events if e["event"] == "drop"]
    assert all(e["reason"] in ("expired", "queue_full", "unserviceable")
               for e in drop_events)


# ---------------------------------------------------------------------------
# queueing-policy unit conformance
# ---------------------------------------------------------------------------

def _req(i, t, model="m", images=8, slo=math.inf):
    return Request(request_id=i, t_arrival=t, model=model, images=images,
                   slo_latency_s=slo)


def test_fifo_policy_picks_oldest_anchor():
    # Queue order is arrival order in the scheduler; FIFO anchors on
    # the oldest request and fills with the next arrivals of its key.
    queue = [_req(0, 0.1), _req(1, 0.2), _req(2, 0.3)]
    picked = make_policy("fifo").select_batch(queue, 1.0, max_batch=2)
    assert [queue[i].request_id for i in picked] == [0, 1]


def test_deadline_policy_picks_tightest_deadline():
    queue = [_req(0, 0.0, slo=9.0), _req(1, 0.2, slo=0.5),
             _req(2, 0.1, slo=5.0)]
    picked = make_policy("slo").select_batch(queue, 0.3, max_batch=1)
    assert [queue[i].request_id for i in picked] == [1]


def test_energy_policy_prefers_fullest_batch():
    queue = [_req(0, 0.0, model="a"), _req(1, 0.1, model="b"),
             _req(2, 0.2, model="b"), _req(3, 0.3, model="b")]
    picked = make_policy("energy").select_batch(queue, 1.0, max_batch=4)
    assert {queue[i].model for i in picked} == {"b"}
    assert len(picked) == 3


def test_policies_never_mix_batch_keys():
    queue = [_req(0, 0.0, model="a", images=8),
             _req(1, 0.1, model="a", images=16),
             _req(2, 0.2, model="a", images=8)]
    for name in POLICIES:
        picked = make_policy(name).select_batch(queue, 1.0, max_batch=4)
        keys = {queue[i].batch_key for i in picked}
        assert len(keys) == 1, f"{name} mixed {keys} in one batch"
