"""Validation pass and DOT export tests."""

import pytest

from repro.graph import GraphBuilder, graph_to_dot, validate_graph
from repro.graph.dot import power_view_to_dot
from repro.graph.graph import Graph, Node
from repro.graph.ops import InputAttrs, OpAttrs, OpType
from repro.graph.validate import assert_valid


def test_valid_graph_has_no_issues(small_cnn):
    assert validate_graph(small_cnn) == []
    assert_valid(small_cnn)


def test_missing_input_node_flagged():
    g = Graph("empty")
    issues = validate_graph(g)
    assert any("no input node" in i.message for i in issues)


def test_shape_mismatch_flagged(small_cnn):
    # Corrupt one node's stored shape.
    node = small_cnn.compute_nodes()[0]
    node.output_shape = (999, 1, 1)
    issues = validate_graph(small_cnn)
    assert any(i.severity == "error" and "inferred" in i.message
               for i in issues)
    with pytest.raises(ValueError):
        assert_valid(small_cnn)


def test_multiple_outputs_warn():
    b = GraphBuilder("g")
    x = b.input((4, 8, 8))
    b.relu(x)
    b.sigmoid(x)
    issues = validate_graph(b.build())
    assert any(i.severity == "warning" and "output nodes" in i.message
               for i in issues)


def test_compute_node_without_inputs_flagged():
    g = Graph("g")
    g.add_node(Node("in", OpType.INPUT, InputAttrs((4,)), (), (4,)))
    g.add_node(Node("orphan", OpType.RELU, OpAttrs(), (), (4,)))
    issues = validate_graph(g)
    assert any("has no inputs" in i.message for i in issues)


def test_dot_contains_all_nodes(small_cnn):
    dot = graph_to_dot(small_cnn)
    for node in small_cnn.nodes():
        assert f'"{node.name}"' in dot
    assert dot.startswith("digraph")
    assert dot.rstrip().endswith("}")


def test_dot_edges_match_graph(small_cnn):
    dot = graph_to_dot(small_cnn)
    for node in small_cnn.nodes():
        for src in node.inputs:
            assert f'"{src}" -> "{node.name}"' in dot


def test_power_view_dot_colours_blocks(small_cnn):
    n = len(small_cnn.compute_nodes())
    half = n // 2
    dot = power_view_to_dot(small_cnn, [list(range(half)),
                                        list(range(half, n))])
    # Two distinct block colours from the palette should appear.
    assert dot.count("#a6cee3") >= 1
    assert dot.count("#b2df8a") >= 1
