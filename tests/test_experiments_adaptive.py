"""Adaptive retention experiment: the PR's headline claim, asserted.

``run_adaptive_retention`` sweeps fault scales over a drifting
workload (plans built at one batch size, traffic shifting to another)
and measures how much of the zero-fault EE gain each runtime keeps.
The claims pinned here:

* on the no-drift zero-fault anchor flow the adaptive runtime is
  **byte-identical** to the static preset runtime (same per-job
  energy / time / switch-count signatures) — the closed loop is free
  when nothing drifts;
* the anchor gain over BiM is positive (the preset runtime is worth
  deploying at all);
* under drift the adaptive runtime retains **strictly more** of that
  gain than the static runtime at *every* fault scale, and it does so
  by actually adopting at least one bounded correction.
"""

from __future__ import annotations

import pytest

from repro.experiments import run_adaptive_retention
from repro.experiments.adaptive import (
    DRIFT_RUNTIMES,
    build_drift_net,
    shifted_faults,
)
from repro.hw.faults import CapWindow, FaultProfile


@pytest.fixture(scope="module")
def retention():
    return run_adaptive_retention()


class TestRetentionSweep:
    def test_anchor_flow_is_byte_identical(self, retention):
        assert retention.anchor_identical

    def test_anchor_gain_positive(self, retention):
        assert retention.anchor_gain() > 0

    def test_sweep_shape(self, retention):
        assert retention.scales[0] == 0.0
        assert set(retention.ee) == set(DRIFT_RUNTIMES)
        for runtime in DRIFT_RUNTIMES:
            assert len(retention.ee[runtime]) == len(retention.scales)
            assert all(v > 0 for v in retention.ee[runtime])

    def test_adaptive_beats_static_at_every_scale(self, retention):
        for i, scale in enumerate(retention.scales):
            assert retention.gain("adaptive", i) \
                > retention.gain("static", i), \
                f"adaptive did not beat static at scale {scale}"
            assert retention.retention("adaptive", i) \
                > retention.retention("static", i)

    def test_loop_actually_acted(self, retention):
        # at least one bounded correction was adopted per scale — the
        # gain isn't an artifact of a different code path
        for health in retention.replan:
            assert health["adopted"] >= 1
            assert health["nudged_blocks"] >= 1

    def test_faults_injected_at_nonzero_scales(self, retention):
        for i, scale in enumerate(retention.scales):
            if scale >= 1.0:
                assert retention.fault_totals[i] > 0

    def test_outputs_render(self, retention):
        table = retention.format_table()
        assert "Adaptive retention under workload drift" in table
        assert "byte-identical to static: yes" in table
        payload = retention.to_dict()
        assert payload["anchor_identical"] is True
        assert payload["gain"]["adaptive"]
        assert payload["profile"] is not None


class TestShiftedFaults:
    def test_none_and_zero_profiles_pass_through(self):
        assert shifted_faults(None, 1.0, seed=1) is None
        assert shifted_faults(FaultProfile(seed=0), 1.0, seed=1) is None

    def test_windows_slide_left_and_expire(self):
        profile = FaultProfile(seed=0, switch_drop_rate=0.1,
                               cap_windows=(CapWindow(2.0, 3.0, 1),))
        shifted = shifted_faults(profile, 2.5, seed=7)
        assert shifted.seed == 7
        assert shifted.cap_windows == (CapWindow(0.0, 0.5, 1),)
        # fully in the past: the window disappears, rates remain
        gone = shifted_faults(profile, 3.0, seed=8)
        assert gone.cap_windows == ()
        assert gone.switch_drop_rate == profile.switch_drop_rate

    def test_future_windows_keep_their_offset(self):
        profile = FaultProfile(seed=0,
                               cap_windows=(CapWindow(4.0, 6.0, 0),))
        shifted = shifted_faults(profile, 1.0, seed=1)
        assert shifted.cap_windows == (CapWindow(3.0, 5.0, 0),)


def test_drift_net_is_batch_sensitive():
    """The drift workload exists because the paper-zoo models have
    batch-invariant analytic plans; the synthetic net must not."""
    graph = build_drift_net()
    assert graph.name == "drift_net"
    assert len(graph.compute_nodes()) >= 16


class TestAdaptiveCLI:
    def test_robustness_adaptive_table(self, capsys):
        import repro.cli as cli
        rc = cli.main(["robustness", "--adaptive", "--scales", "0"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Adaptive retention under workload drift" in out
        assert "byte-identical to static: yes" in out

    def test_robustness_adaptive_json(self, capsys):
        import json

        import repro.cli as cli
        rc = cli.main(["robustness", "--adaptive", "--scales", "0",
                       "--json"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["anchor_identical"] is True
        assert payload["anchor_gain"] > 0
        scales = payload["scales"]
        for i in range(len(scales)):
            assert payload["gain"]["adaptive"][i] \
                > payload["gain"]["static"][i]
