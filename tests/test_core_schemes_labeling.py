"""Scheme grid and dataset-labeling tests."""

import numpy as np
import pytest

from repro.core.features import DepthwiseFeatureExtractor
from repro.core.labeling import (
    best_scheme_for_graph,
    block_optimal_level,
    plan_levels_for_blocks,
    scheme_quality,
)
from repro.core.schemes import (
    ClusteringScheme,
    default_scheme_grid,
    scheme_index,
)
from repro.hw.analytic import AnalyticEvaluator


@pytest.fixture()
def evaluator(tx2):
    return AnalyticEvaluator(tx2)


class TestSchemes:
    def test_grid_size_and_uniqueness(self):
        grid = default_scheme_grid()
        assert len(grid) == 12
        assert len(set(grid)) == 12

    def test_scheme_validation(self):
        with pytest.raises(ValueError):
            ClusteringScheme(eps=-0.1, min_pts=2)
        with pytest.raises(ValueError):
            ClusteringScheme(eps=0.1, min_pts=0)

    def test_scheme_index(self):
        grid = default_scheme_grid()
        assert scheme_index(grid, grid[5]) == 5
        with pytest.raises(ValueError):
            scheme_index(grid, ClusteringScheme(eps=9.9, min_pts=99))

    def test_label(self):
        s = ClusteringScheme(eps=0.45, min_pts=4)
        assert s.label() == "eps=0.45,minPts=4"


class TestBlockLabeling:
    def test_block_optimal_level_in_range(self, evaluator, small_cnn,
                                          tx2):
        n = len(small_cnn.compute_nodes())
        lvl = block_optimal_level(evaluator, small_cnn, range(n),
                                  batch_size=8)
        assert 0 <= lvl <= tx2.max_level

    def test_optimal_below_max(self, evaluator, small_cnn):
        """The whole point of the paper: the EE-optimal level sits below
        the maximum frequency."""
        n = len(small_cnn.compute_nodes())
        lvl = block_optimal_level(evaluator, small_cnn, range(n),
                                  batch_size=8)
        assert lvl < evaluator.platform.max_level

    def test_plan_levels_one_per_block(self, evaluator, small_cnn):
        n = len(small_cnn.compute_nodes())
        blocks = [list(range(n // 2)), list(range(n // 2, n))]
        levels = plan_levels_for_blocks(evaluator, small_cnn, blocks,
                                        batch_size=8)
        assert len(levels) == 2


class TestSchemeQuality:
    def test_quality_positive(self, evaluator, small_cnn):
        n = len(small_cnn.compute_nodes())
        q = scheme_quality(evaluator, small_cnn, [list(range(n))],
                           batch_size=8)
        assert q > 0

    def test_empty_blocks_zero(self, evaluator, small_cnn):
        assert scheme_quality(evaluator, small_cnn, []) == 0.0

    def test_quality_is_reciprocal_energy(self, evaluator, small_cnn):
        n = len(small_cnn.compute_nodes())
        blocks = [list(range(n))]
        q = scheme_quality(evaluator, small_cnn, blocks, batch_size=8)
        levels = plan_levels_for_blocks(evaluator, small_cnn, blocks,
                                        batch_size=8)
        e, _t = evaluator.plan_energy_time(small_cnn, blocks, levels, 8)
        assert q == pytest.approx(1.0 / e)


class TestBestScheme:
    def test_returns_valid_index_and_partition(self, evaluator,
                                               small_cnn):
        feats = DepthwiseFeatureExtractor().extract_scaled(small_cnn)
        grid = default_scheme_grid()
        best, blocks, qualities = best_scheme_for_graph(
            evaluator, small_cnn, feats, grid, batch_size=8)
        assert 0 <= best < len(grid)
        assert len(qualities) == len(grid)
        covered = sorted(i for b in blocks for i in b)
        assert covered == list(range(len(small_cnn.compute_nodes())))

    def test_winner_quality_within_tolerance_of_best(self, evaluator,
                                                     small_cnn):
        feats = DepthwiseFeatureExtractor().extract_scaled(small_cnn)
        grid = default_scheme_grid()
        best, _blocks, qualities = best_scheme_for_graph(
            evaluator, small_cnn, feats, grid, batch_size=8,
            quality_tolerance=0.01)
        assert qualities[best] >= max(qualities) * (1 - 0.01) - 1e-12

    def test_tie_break_prefers_finer_view(self, evaluator, small_cnn):
        """Among quality-equivalent schemes the finest view wins."""
        feats = DepthwiseFeatureExtractor().extract_scaled(small_cnn)
        grid = default_scheme_grid()
        best, blocks, qualities = best_scheme_for_graph(
            evaluator, small_cnn, feats, grid, batch_size=8,
            quality_tolerance=0.01)
        from repro.core.clustering import cluster_power_blocks
        top = max(qualities)
        for i, s in enumerate(grid):
            if qualities[i] >= top * 0.99:
                other = cluster_power_blocks(feats, s.eps, s.min_pts)
                assert len(other) <= len(blocks)
