"""Dataset generator and predictor tests (section 2.2)."""

import numpy as np
import pytest

from repro.core.datasets import DatasetA, DatasetB, DatasetGenerator
from repro.core.predictors import DecisionModel, HyperparamPredictor
from repro.core.schemes import default_scheme_grid
from repro.models.random_gen import RandomDNNConfig


@pytest.fixture(scope="module")
def generated(tx2_module):
    gen = DatasetGenerator(
        tx2_module,
        dnn_config=RandomDNNConfig(min_stages=2, max_stages=3,
                                   max_blocks_per_stage=4))
    return gen.generate(12, seed=0)


@pytest.fixture(scope="module")
def tx2_module():
    from repro.hw import jetson_tx2
    return jetson_tx2()


class TestGenerator:
    def test_dataset_shapes(self, generated, tx2_module):
        a, b, stats = generated
        assert len(a) == 12
        assert a.x_struct.shape[0] == 12
        assert a.qualities.shape == (12, len(default_scheme_grid()))
        assert len(b) == stats.n_blocks
        assert b.n_levels == tx2_module.n_levels
        assert np.all(b.y >= 0) and np.all(b.y < b.n_levels)
        assert np.all(a.y >= 0) and np.all(a.y < a.n_schemes)

    def test_blocks_per_network_bookkeeping(self, generated):
        _a, b, stats = generated
        assert sum(stats.blocks_per_network) == len(b)
        assert stats.wall_time_s > 0

    def test_features_finite(self, generated):
        a, b, _ = generated
        assert np.all(np.isfinite(a.x_struct))
        assert np.all(np.isfinite(a.x_stats))
        assert np.all(np.isfinite(b.x))

    def test_invalid_count(self, tx2_module):
        with pytest.raises(ValueError):
            DatasetGenerator(tx2_module).generate(0)

    def test_save_load_roundtrip(self, generated, tmp_path):
        a, b, _ = generated
        a.save(tmp_path / "a.npz")
        b.save(tmp_path / "b.npz")
        a2 = DatasetA.load(tmp_path / "a.npz")
        b2 = DatasetB.load(tmp_path / "b.npz")
        assert np.array_equal(a.y, a2.y)
        assert np.array_equal(a.qualities, a2.qualities)
        assert np.array_equal(b.x, b2.x)
        assert b2.n_levels == b.n_levels


class TestPredictors:
    def test_decision_model_unfitted_raises(self):
        m = DecisionModel(input_dim=4, n_levels=5)
        with pytest.raises(RuntimeError):
            m.predict_levels(np.zeros((1, 4)))

    def test_hyperparam_unfitted_raises(self):
        from repro.core.features import GlobalFeatures
        m = HyperparamPredictor(default_scheme_grid(), 4, 3)
        gf = GlobalFeatures(structural=np.zeros(4),
                            statistics=np.zeros(3))
        with pytest.raises(RuntimeError):
            m.predict(gf)

    def test_decision_model_learns_synthetic(self):
        """A decision model must learn a feature->level mapping where
        the level is a simple function of one feature."""
        rng = np.random.default_rng(0)
        n, d, levels = 1200, 6, 5
        x = rng.normal(size=(n, d))
        y = np.clip(((x[:, 0] + 2) / 4 * levels).astype(int), 0,
                    levels - 1)
        ds = DatasetB(x=x, y=y, n_levels=levels)
        m = DecisionModel(input_dim=d, n_levels=levels, seed=0)
        report = m.fit(ds, max_epochs=80)
        assert report.test_accuracy > 0.75
        assert report.within_1_accuracy > 0.95
        assert report.n_train == int(0.8 * n)

    def test_decision_predict_levels_range(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(300, 4))
        y = (x[:, 0] > 0).astype(int) * 3
        m = DecisionModel(input_dim=4, n_levels=5, seed=1)
        m.fit(DatasetB(x=x, y=y, n_levels=5), max_epochs=30)
        preds = m.predict_levels(rng.normal(size=(10, 4)))
        assert all(0 <= p < 5 for p in preds)
        single = m.predict_levels(np.zeros(4))
        assert len(single) == 1

    def test_hyperparam_model_fit_and_predict(self, generated):
        a, _b, _ = generated
        m = HyperparamPredictor(default_scheme_grid(),
                                structural_dim=a.x_struct.shape[1],
                                statistics_dim=a.x_stats.shape[1])
        report = m.fit(a, max_epochs=20)
        assert 0.0 <= report.test_accuracy <= 1.0
        assert 0.0 <= report.equivalent_accuracy <= 1.0
        from repro.core.features import GlobalFeatures
        gf = GlobalFeatures(structural=a.x_struct[0],
                            statistics=a.x_stats[0])
        scheme = m.predict(gf)
        assert scheme in default_scheme_grid()
