"""Byte-identity suites for the vectorized labeling fast path.

Every optimization in the labeling hot path (pairs-einsum Mahalanobis,
frontier DBSCAN, one-hot-cumsum majority filter, ProfileTable block
reductions, memoized scheme sweep) retains its original loop
implementation as a ``*_reference``; these property tests pin the fast
paths to the references **byte for byte** — ``tobytes()``, not
``allclose`` — so labeling output (and therefore every dataset cache
key's payload) is provably unchanged by the optimization work.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.clustering import (
    _mode_filter,
    _mode_filter_reference,
    cluster_power_blocks,
    cluster_power_blocks_reference,
    dbscan_precomputed,
    dbscan_precomputed_reference,
    mahalanobis_matrix,
    mahalanobis_matrix_reference,
)
from repro.core.labeling import (
    label_network,
    label_network_reference,
)
from repro.core.schemes import ClusteringScheme
from repro.core.features import DepthwiseFeatureExtractor
from repro.hw.analytic import AnalyticEvaluator
from repro.hw.platform import jetson_tx2
from repro.models.random_gen import RandomDNNConfig, RandomDNNGenerator

#: Small population + coarse grid keeps the exhaustive sweeps CI-fast.
_SMALL_DNNS = RandomDNNConfig(min_stages=2, max_stages=3,
                              max_blocks_per_stage=3)
_SMALL_GRID = [ClusteringScheme(eps=e, min_pts=m)
               for e in (0.45, 0.75) for m in (2, 4)]


def _assert_bytes_equal(fast: np.ndarray, ref: np.ndarray) -> None:
    assert fast.shape == ref.shape
    assert fast.dtype == ref.dtype
    assert fast.tobytes() == ref.tobytes()


def _random_graph(seed: int):
    return RandomDNNGenerator(_SMALL_DNNS, seed=seed).generate()


# ----------------------------------------------------------------------
# clustering primitives
# ----------------------------------------------------------------------

class TestMahalanobisEquivalence:
    @given(seed=st.integers(0, 10**6), n=st.integers(0, 24),
           d=st.integers(1, 6))
    @settings(max_examples=80, deadline=None)
    def test_matches_reference(self, seed, n, d):
        rng = np.random.default_rng(seed)
        x = rng.normal(size=(n, d)) * rng.uniform(0.1, 10.0, size=d)
        # Collinear / constant columns exercise the pseudo-inverse.
        if d > 1 and seed % 3 == 0:
            x[:, -1] = x[:, 0]
        if d > 2 and seed % 5 == 0:
            x[:, 1] = 7.0
        _assert_bytes_equal(mahalanobis_matrix(x),
                            mahalanobis_matrix_reference(x))


class TestDbscanEquivalence:
    @given(seed=st.integers(0, 10**6), n=st.integers(1, 30),
           eps=st.floats(0.05, 1.5), min_pts=st.integers(1, 8))
    @settings(max_examples=120, deadline=None)
    def test_matches_reference(self, seed, n, eps, min_pts):
        rng = np.random.default_rng(seed)
        d = rng.uniform(0.0, 1.0, size=(n, n))
        d = (d + d.T) / 2.0
        np.fill_diagonal(d, 0.0)
        _assert_bytes_equal(dbscan_precomputed(d, eps, min_pts),
                            dbscan_precomputed_reference(d, eps, min_pts))

    def test_empty_matrix(self):
        d = np.zeros((0, 0))
        _assert_bytes_equal(dbscan_precomputed(d, 0.5, 2),
                            dbscan_precomputed_reference(d, 0.5, 2))


class TestModeFilterEquivalence:
    @given(seed=st.integers(0, 10**6), n=st.integers(0, 60),
           n_labels=st.integers(1, 5), window=st.integers(0, 6))
    @settings(max_examples=120, deadline=None)
    def test_matches_reference(self, seed, n, n_labels, window):
        rng = np.random.default_rng(seed)
        labels = rng.integers(-1, n_labels, size=n)  # -1 = noise
        _assert_bytes_equal(_mode_filter(labels.copy(), window),
                            _mode_filter_reference(labels.copy(), window))


class TestClusterPowerBlocksEquivalence:
    @given(seed=st.integers(0, 10**6), n=st.integers(0, 24),
           eps=st.floats(0.2, 0.9), min_pts=st.integers(1, 6))
    @settings(max_examples=60, deadline=None)
    def test_matches_reference(self, seed, n, eps, min_pts):
        rng = np.random.default_rng(seed)
        x = rng.normal(size=(n, 4))
        assert cluster_power_blocks(x, eps, min_pts) == \
            cluster_power_blocks_reference(x, eps, min_pts)


# ----------------------------------------------------------------------
# ProfileTable vs the per-op loop
# ----------------------------------------------------------------------

@pytest.fixture(scope="module")
def tx2_evaluator():
    return AnalyticEvaluator(jetson_tx2())


class TestProfileTableEquivalence:
    @given(seed=st.integers(0, 10**4), batch=st.sampled_from([1, 4, 16]),
           pick=st.integers(0, 10**6))
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_block_profile_bitwise(self, tx2_evaluator, seed, batch, pick):
        graph = _random_graph(seed)
        n_ops = len(graph.compute_nodes())
        rng = np.random.default_rng(pick)
        start = int(rng.integers(0, n_ops))
        stop = int(rng.integers(start + 1, n_ops + 1))
        contiguous = list(range(start, stop))
        scattered = sorted(rng.choice(
            n_ops, size=int(rng.integers(1, n_ops + 1)),
            replace=False).tolist())
        for block in ([], contiguous, scattered, list(range(n_ops))):
            fast = tx2_evaluator.block_profile(graph, block, batch)
            ref = tx2_evaluator.block_profile_reference(graph, block,
                                                        batch)
            _assert_bytes_equal(fast.times, ref.times)
            _assert_bytes_equal(fast.energies, ref.energies)

    @given(seed=st.integers(0, 10**4), batch=st.sampled_from([1, 16]))
    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_graph_profile_bitwise(self, tx2_evaluator, seed, batch):
        graph = _random_graph(seed)
        works = tx2_evaluator.latency.graph_work(graph)
        fast = tx2_evaluator.graph_profile(graph, batch)
        ref = tx2_evaluator.profile(works, batch)
        _assert_bytes_equal(fast.times, ref.times)
        _assert_bytes_equal(fast.energies, ref.energies)

    @given(seed=st.integers(0, 10**4), split=st.integers(0, 10**6),
           batch=st.sampled_from([1, 16]))
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_plan_energy_time_bitwise(self, tx2_evaluator, seed, split,
                                      batch):
        graph = _random_graph(seed)
        n_ops = len(graph.compute_nodes())
        rng = np.random.default_rng(split)
        n_cuts = int(rng.integers(0, min(4, n_ops)))
        cuts = sorted(rng.choice(range(1, n_ops), size=n_cuts,
                                 replace=False).tolist()) if n_cuts else []
        bounds = [0] + cuts + [n_ops]
        blocks = [list(range(a, b)) for a, b in zip(bounds, bounds[1:])]
        levels = [int(rng.integers(0, tx2_evaluator.platform.n_levels))
                  for _ in blocks]
        fast = tx2_evaluator.plan_energy_time(graph, blocks, levels,
                                              batch)
        ref = tx2_evaluator.plan_energy_time_reference(graph, blocks,
                                                       levels, batch)
        assert np.float64(fast[0]).tobytes() == np.float64(ref[0]).tobytes()
        assert np.float64(fast[1]).tobytes() == np.float64(ref[1]).tobytes()


# ----------------------------------------------------------------------
# end-to-end label_network
# ----------------------------------------------------------------------

class TestLabelNetworkEquivalence:
    @given(seed=st.integers(0, 10**4))
    @settings(max_examples=10, deadline=None)
    def test_end_to_end_bitwise(self, seed):
        platform = jetson_tx2()
        graph = _random_graph(seed)
        features = DepthwiseFeatureExtractor().extract_scaled(graph)
        fast = label_network(AnalyticEvaluator(platform), graph,
                             features, _SMALL_GRID)
        ref = label_network_reference(AnalyticEvaluator(platform), graph,
                                      features, _SMALL_GRID)
        assert fast.best_scheme == ref.best_scheme
        assert fast.blocks == ref.blocks
        assert fast.levels == ref.levels
        assert len(fast.qualities) == len(ref.qualities)
        for q_fast, q_ref in zip(fast.qualities, ref.qualities):
            assert np.float64(q_fast).tobytes() == \
                np.float64(q_ref).tobytes()
        # NetworkLabels compares by content; telemetry is excluded.
        assert fast == ref


class TestFastPathSmoke:
    def test_label_network_smoke(self, tiny_platform):
        """Tier-1 smoke: one tiny end-to-end labeling through the fast
        path produces a well-formed result with stage telemetry."""
        graph = _random_graph(3)
        features = DepthwiseFeatureExtractor().extract_scaled(graph)
        labels = label_network(AnalyticEvaluator(tiny_platform), graph,
                               features, _SMALL_GRID)
        n_ops = len(graph.compute_nodes())
        assert 0 <= labels.best_scheme < len(_SMALL_GRID)
        assert sorted(i for b in labels.blocks for i in b) == \
            list(range(n_ops))
        assert len(labels.levels) == len(labels.blocks)
        assert all(0 <= lv < tiny_platform.n_levels
                   for lv in labels.levels)
        assert labels.stage_seconds is not None
        assert set(labels.stage_seconds) == \
            {"distance", "cluster", "evaluate"}
        assert all(v >= 0.0 for v in labels.stage_seconds.values())

    def test_profile_table_cache_reused(self, tiny_platform):
        evaluator = AnalyticEvaluator(tiny_platform)
        graph = _random_graph(5)
        t1 = evaluator.profile_table(graph, 16)
        t2 = evaluator.profile_table(graph, 16)
        assert t1 is t2
        assert evaluator.profile_table(graph, 1) is not t1
