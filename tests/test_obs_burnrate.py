"""SLO burn-rate monitor: calibration, window math, detection.

The calibration contract from the design: **zero false alerts** on a
clean (fault-free, generous-SLO) run of every governor × policy
conformance cell, while an injected burn — a fault storm with a tight
SLO, or a synthetic mass-violation stream — is detected.  Plus the
window mechanics in isolation: budget arithmetic, fast/slow pairing,
the ``min_events`` floor, episode open/close, and config validation.
"""

from __future__ import annotations

import math

import pytest

from repro.hw.faults import FaultProfile
from repro.obs.burnrate import BurnAlert, BurnRateConfig, BurnRateMonitor
from repro.serving import (
    DeviceConfig,
    Fleet,
    FleetScheduler,
    SERVING_GOVERNORS,
    SchedulerConfig,
    make_trace,
)
from tests.conftest import build_small_cnn

pytestmark = [pytest.mark.serving, pytest.mark.obs]

MODEL = "small_cnn"
POLICIES = ("fifo", "slo", "energy")


def _serve_with_burn(governor: str, policy: str, seed: int = 11,
                     rate: float = 30.0, duration: float = 0.5,
                     slo: float = math.inf, faults=None,
                     config: BurnRateConfig = None):
    fleet = Fleet.build([DeviceConfig("tx2-0", "tx2"),
                         DeviceConfig("agx-1", "agx")],
                        governor=governor, fleet_seed=seed,
                        faults=faults)
    fleet.add_graph(build_small_cnn(MODEL))
    trace = make_trace("poisson", rate_rps=rate, duration_s=duration,
                       models=[MODEL], seed=seed, slo_latency_s=slo)
    monitor = BurnRateMonitor(config or BurnRateConfig(
        fast_window_s=0.125, slow_window_s=0.5))
    FleetScheduler(fleet, SchedulerConfig(policy=policy),
                   burn_monitor=monitor).run(trace)
    return monitor


# ----------------------------------------------------------------------
# calibration: clean runs never alert, storms do
# ----------------------------------------------------------------------
class TestCalibration:
    @pytest.mark.parametrize("policy", POLICIES)
    @pytest.mark.parametrize("governor", SERVING_GOVERNORS)
    def test_zero_alerts_on_clean_runs(self, governor, policy):
        monitor = _serve_with_burn(governor, policy)
        assert monitor.alert_count == 0, (
            f"{governor}/{policy}: spurious burn alert on a clean run")
        assert monitor.bad_events == 0
        assert monitor.peak_fast_burn == 0.0
        assert monitor.peak_slow_burn == 0.0

    def test_fault_storm_with_tight_slo_detected(self):
        monitor = _serve_with_burn(
            "powerlens", "slo", seed=3, rate=200.0, slo=0.02,
            config=BurnRateConfig(fast_window_s=0.05,
                                  slow_window_s=0.1, min_events=3))
        assert monitor.alert_count > 0
        assert monitor.bad_events > 0
        assert monitor.peak_fast_burn >= monitor.config.threshold

    def test_hardware_fault_storm_detected(self):
        faults = FaultProfile(seed=3, telemetry_noise_std=0.8,
                              switch_drop_rate=0.2)
        monitor = _serve_with_burn(
            "powerlens", "fifo", seed=3, rate=60.0, duration=2.0,
            slo=0.5, faults=faults,
            config=BurnRateConfig(fast_window_s=0.25,
                                  slow_window_s=1.0, min_events=3))
        assert monitor.bad_events > 0
        assert monitor.peak_fast_burn > 0.0

    def test_metrics_registry_shape(self):
        monitor = _serve_with_burn("powerlens", "fifo")
        registry = monitor.metrics()
        assert registry.counter(
            "powerlens_slo_burn_events_total").value == monitor.events
        assert registry.counter(
            "powerlens_slo_burn_alerts_total").value == 0
        assert registry.gauge("powerlens_slo_burn_fast").value == 0.0


# ----------------------------------------------------------------------
# window math on synthetic streams
# ----------------------------------------------------------------------
class TestWindowMath:
    def test_budget_property(self):
        assert BurnRateConfig(objective=0.99).budget == pytest.approx(
            0.01)
        assert BurnRateConfig(objective=0.9).budget == pytest.approx(
            0.1)

    def test_all_ok_stream_never_fires(self):
        monitor = BurnRateMonitor(BurnRateConfig(min_events=1))
        for i in range(100):
            monitor.observe(i * 0.01, True)
        monitor.finalize(1.0)
        assert monitor.alert_count == 0
        assert monitor.peak_fast_burn == 0.0

    def test_all_bad_stream_fires_once_past_min_events(self):
        cfg = BurnRateConfig(objective=0.99, fast_window_s=0.5,
                             slow_window_s=2.0, threshold=4.0,
                             min_events=10)
        monitor = BurnRateMonitor(cfg)
        for i in range(30):
            monitor.observe(i * 0.01, False)
        monitor.finalize(0.3)
        # bad_fraction 1.0 → burn 100 ≫ threshold, one long episode.
        assert len(monitor.alerts) == 1
        alert = monitor.alerts[0]
        assert isinstance(alert, BurnAlert)
        assert alert.peak_fast_burn == pytest.approx(100.0)
        assert alert.peak_slow_burn == pytest.approx(100.0)
        assert alert.t_end == 0.3
        assert alert.duration_s > 0

    def test_min_events_floor_suppresses_early_blip(self):
        cfg = BurnRateConfig(min_events=10, fast_window_s=0.1,
                             slow_window_s=0.1)
        monitor = BurnRateMonitor(cfg)
        for i in range(5):
            monitor.observe(i * 0.01, False)
        monitor.finalize(0.05)
        assert monitor.alert_count == 0
        # Burn was still recorded as a peak, just below alerting.
        assert monitor.peak_fast_burn > 0

    def test_episode_closes_when_burn_subsides(self):
        cfg = BurnRateConfig(objective=0.9, fast_window_s=0.2,
                             slow_window_s=0.2, threshold=2.0,
                             min_events=5)
        monitor = BurnRateMonitor(cfg)
        t = 0.0
        for _ in range(20):          # storm: all bad
            monitor.observe(t, False)
            t += 0.01
        for _ in range(200):         # recovery: all ok, windows slide
            monitor.observe(t, True)
            t += 0.01
        monitor.finalize(t)
        assert len(monitor.alerts) == 1
        alert = monitor.alerts[0]
        assert alert.t_end < t       # closed by recovery, not finalize
        assert alert.bad_events > 0

    def test_slow_window_gates_fast_blip(self):
        # A short spike fills the fast window but the slow window's
        # bad fraction stays below threshold → no alert (the whole
        # point of multi-window burn).
        cfg = BurnRateConfig(objective=0.5, fast_window_s=0.05,
                             slow_window_s=10.0, threshold=1.9,
                             min_events=2)
        monitor = BurnRateMonitor(cfg)
        t = 0.0
        for _ in range(200):         # long good history
            monitor.observe(t, True)
            t += 0.01
        for _ in range(10):          # brief spike
            monitor.observe(t, False)
            t += 0.01
        monitor.finalize(t)
        assert monitor.alert_count == 0
        assert monitor.peak_fast_burn >= cfg.threshold

    def test_window_slides_by_virtual_time(self):
        cfg = BurnRateConfig(objective=0.9, fast_window_s=0.1,
                             slow_window_s=0.1, min_events=1)
        monitor = BurnRateMonitor(cfg)
        monitor.observe(0.0, False)
        # Far in the future the old bad event has left both windows.
        monitor.observe(10.0, True)
        assert monitor._fast.bad == 0
        assert len(monitor._fast.events) == 1

    def test_finalize_idempotent_and_closes_open_episode(self):
        cfg = BurnRateConfig(objective=0.9, min_events=1,
                             threshold=1.0)
        monitor = BurnRateMonitor(cfg)
        for i in range(5):
            monitor.observe(i * 0.01, False)
        assert monitor.alert_count == 1   # open episode counted
        assert monitor.alerts == []
        monitor.finalize(0.05)
        monitor.finalize(99.0)
        assert len(monitor.alerts) == 1
        assert monitor.alerts[0].t_end == 0.05

    def test_span_rows_shape(self):
        cfg = BurnRateConfig(objective=0.9, min_events=1,
                             threshold=1.0)
        monitor = BurnRateMonitor(cfg)
        for i in range(5):
            monitor.observe(i * 0.01, False)
        monitor.finalize(0.05)
        rows = monitor.span_rows()
        assert len(rows) == 1
        name, t_start, t_end, attrs = rows[0]
        assert name == "slo_burn"
        assert t_start <= t_end
        assert attrs["objective"] == 0.9
        assert attrs["bad_events"] == 5

    def test_summary_digest(self):
        monitor = BurnRateMonitor()
        monitor.observe(0.0, True)
        monitor.finalize(0.1)
        digest = monitor.summary()
        assert digest["events"] == 1
        assert digest["alerts"] == 0
        assert digest["alert_spans"] == []


# ----------------------------------------------------------------------
# config validation
# ----------------------------------------------------------------------
@pytest.mark.parametrize("kwargs", [
    dict(objective=0.0), dict(objective=1.0), dict(objective=-0.5),
    dict(fast_window_s=0.0), dict(slow_window_s=-1.0),
    dict(fast_window_s=2.0, slow_window_s=1.0),
    dict(threshold=0.0), dict(min_events=0),
])
def test_invalid_config_rejected(kwargs):
    with pytest.raises(ValueError):
        BurnRateConfig(**kwargs)
