"""Shared fixtures.

``tiny_platform`` is a cut-down ladder for fast governor/simulator tests;
``fitted_lens`` is a session-scoped PowerLens trained on a small corpus so
pipeline/ablation/experiment tests don't each pay for dataset generation.

Every test also runs under a soft wall-clock timeout (default 180 s,
``POWERLENS_TEST_TIMEOUT`` to change, ``0`` to disable) so a hung retry
loop fails that one test fast instead of wedging the whole suite.  When
the real ``pytest-timeout`` plugin is installed it takes precedence; the
fallback here uses ``SIGALRM`` and is a no-op on platforms without it.
"""

from __future__ import annotations

import os
import signal
import threading

import pytest
from hypothesis import HealthCheck, settings as hyp_settings

from repro.core import PowerLens, PowerLensConfig
from repro.graph import Graph, GraphBuilder
from repro.hw import PlatformSpec, CpuSpec, jetson_tx2

TEST_TIMEOUT_S = float(os.environ.get("POWERLENS_TEST_TIMEOUT", "180"))

# Deterministic hypothesis profile for CI: derandomized (the same
# example sequence on every run, so a red build is reproducible) and
# with the wall-clock deadline off (shared runners are noisy).  Loaded
# whenever a CI environment announces itself; local runs keep the
# default randomized exploration.
hyp_settings.register_profile(
    "ci", derandomize=True, deadline=None, print_blob=True,
    suppress_health_check=[HealthCheck.too_slow])
if os.environ.get("CI") or os.environ.get("GITHUB_ACTIONS"):
    hyp_settings.load_profile("ci")


def pytest_addoption(parser):
    parser.addoption(
        "--update-goldens", action="store_true", default=False,
        help="rewrite tests/goldens/*.json from the current outputs "
             "instead of comparing against them")


@pytest.fixture(scope="session")
def update_goldens(request) -> bool:
    return bool(request.config.getoption("--update-goldens"))


@pytest.fixture(autouse=True)
def _soft_timeout(request):
    """Per-test wall-clock limit via SIGALRM (see module docstring)."""
    marker = request.node.get_closest_marker("timeout")
    limit = float(marker.args[0]) if marker and marker.args \
        else TEST_TIMEOUT_S
    if (limit <= 0 or not hasattr(signal, "SIGALRM")
            or threading.current_thread() is not threading.main_thread()
            or request.config.pluginmanager.hasplugin("timeout")):
        # SIGALRM timers only work from the main thread (and not at all
        # on platforms without the signal); degrade to no timeout.
        yield
        return

    def _expired(signum, frame):
        pytest.fail(f"test exceeded the {limit:.0f}s soft timeout "
                    f"(POWERLENS_TEST_TIMEOUT)", pytrace=False)

    previous = signal.signal(signal.SIGALRM, _expired)
    signal.setitimer(signal.ITIMER_REAL, limit)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


@pytest.fixture(scope="session")
def tx2() -> PlatformSpec:
    return jetson_tx2()


@pytest.fixture(scope="session")
def tiny_platform() -> PlatformSpec:
    """Five-level platform, cheap to sweep exhaustively."""
    return PlatformSpec(
        name="tiny",
        gpu_freq_levels=(200e6, 400e6, 600e6, 800e6, 1000e6),
        cpu=CpuSpec(freq_levels=(500e6, 1000e6, 2000e6)),
    )


def build_small_cnn(name: str = "small_cnn") -> Graph:
    """A small but structurally interesting CNN: conv stage, residual
    stage, classifier head."""
    b = GraphBuilder(name)
    x = b.input((3, 32, 32))
    x = b.conv_bn_act(x, 16, kernel=3, stride=1, padding=1)
    x = b.conv_bn_act(x, 32, kernel=3, stride=2, padding=1)
    y = b.conv_bn_act(x, 32, kernel=3, stride=1, padding=1)
    x = b.add([x, y])
    x = b.relu(x)
    x = b.adaptive_avgpool(x, 1)
    x = b.flatten(x)
    x = b.linear(x, 64)
    x = b.relu(x)
    b.linear(x, 10)
    return b.build()


@pytest.fixture()
def small_cnn() -> Graph:
    return build_small_cnn()


@pytest.fixture(scope="session")
def fitted_lens(tx2) -> PowerLens:
    """PowerLens fitted on a small synthetic corpus (session-scoped)."""
    lens = PowerLens(tx2, PowerLensConfig(n_networks=25, seed=7))
    lens.fit()
    return lens
