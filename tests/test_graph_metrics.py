"""Operator/graph metric tests, pinned against hand-computed and
published reference values."""

import pytest

from repro.graph import GraphBuilder, graph_metrics, node_metrics
from repro.graph.metrics import metrics_table
from repro.models import build_model


def _single_op_metrics(build):
    b = GraphBuilder("m")
    build(b)
    g = b.build()
    node = g.compute_nodes()[-1]
    return node_metrics(g, node)


class TestConvMetrics:
    def test_conv_flops_hand_computed(self):
        # 3x3 conv, 4->8 channels, 16x16 output, no bias:
        # 2 * 8 * 16 * 16 * (4 * 3 * 3) = 147456
        m = _single_op_metrics(lambda b: b.conv(
            b.input((4, 16, 16)), 8, kernel=3, padding=1, bias=False))
        assert m.flops == pytest.approx(2 * 8 * 16 * 16 * 36)
        assert m.params == 8 * 4 * 9

    def test_conv_bias_adds_params_and_flops(self):
        base = _single_op_metrics(lambda b: b.conv(
            b.input((4, 16, 16)), 8, kernel=3, padding=1, bias=False))
        biased = _single_op_metrics(lambda b: b.conv(
            b.input((4, 16, 16)), 8, kernel=3, padding=1, bias=True))
        assert biased.params == base.params + 8
        assert biased.flops == base.flops + 8 * 16 * 16

    def test_grouped_conv_divides_flops(self):
        dense = _single_op_metrics(lambda b: b.conv(
            b.input((8, 16, 16)), 8, kernel=3, padding=1, bias=False))
        grouped = _single_op_metrics(lambda b: b.conv(
            b.input((8, 16, 16)), 8, kernel=3, padding=1, groups=4,
            bias=False))
        assert grouped.flops == pytest.approx(dense.flops / 4)
        assert grouped.params == pytest.approx(dense.params / 4)

    def test_linear_flops(self):
        m = _single_op_metrics(lambda b: b.linear(
            b.input((512,)), 100, bias=True))
        assert m.flops == pytest.approx(2 * 512 * 100 + 100)
        assert m.params == 512 * 100 + 100

    def test_attention_params(self):
        def build(b):
            x = b.input((768, 14, 14))
            x = b.tokenize(x)
            b.attention(x, num_heads=12)
        m = _single_op_metrics(build)
        assert m.params == 4 * 768 * 768 + 4 * 768

    def test_intensity_positive(self):
        m = _single_op_metrics(lambda b: b.relu(b.input((8, 16, 16))))
        assert m.arithmetic_intensity > 0


class TestPublishedTotals:
    """Whole-model totals against well-known published numbers.

    FLOPs here count MAC as 2 ops, so they are 2x the 'GMACs' figures
    usually quoted; params match directly.
    """

    @pytest.mark.parametrize("model,params_m,tol", [
        ("alexnet", 61.1, 0.02),
        ("vgg19", 143.7, 0.02),
        ("resnet34", 21.8, 0.02),
        ("resnet152", 60.2, 0.02),
        ("densenet201", 20.0, 0.05),
        ("mobilenet_v3_large", 5.48, 0.05),
        ("resnext101_32x8d", 88.8, 0.02),
        ("vit_b_16", 86.6, 0.02),
        ("regnet_y_128gf", 644.8, 0.02),
    ])
    def test_param_counts(self, model, params_m, tol):
        g = build_model(model)
        total = graph_metrics(g).total_params / 1e6
        assert total == pytest.approx(params_m, rel=tol)

    @pytest.mark.parametrize("model,gmacs,tol", [
        ("alexnet", 0.71, 0.05),
        ("vgg19", 19.6, 0.05),
        ("resnet152", 11.6, 0.05),
        ("vit_b_16", 17.6, 0.05),
    ])
    def test_flop_counts(self, model, gmacs, tol):
        g = build_model(model)
        total = graph_metrics(g).total_flops / 2e9
        assert total == pytest.approx(gmacs, rel=tol)


class TestGraphMetrics:
    def test_aggregates_consistent(self, small_cnn):
        gm = graph_metrics(small_cnn)
        rows = metrics_table(small_cnn)
        assert gm.n_compute_nodes == len(rows)
        assert gm.total_flops == pytest.approx(
            sum(m.flops for _, m in rows))
        assert gm.total_params == pytest.approx(
            sum(m.params for _, m in rows))

    def test_category_breakdown_sums(self, small_cnn):
        gm = graph_metrics(small_cnn)
        assert sum(gm.flops_by_category.values()) == \
            pytest.approx(gm.total_flops)
        assert sum(gm.count_by_category.values()) == gm.n_compute_nodes

    def test_mean_intensity(self, small_cnn):
        gm = graph_metrics(small_cnn)
        assert gm.mean_intensity > 0
