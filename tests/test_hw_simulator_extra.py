"""Additional simulator coverage: sampling interplay, governor events,
telemetry contents."""

import pytest

from repro.governors import Governor, StaticGovernor
from repro.hw import InferenceJob, InferenceSimulator
from repro.hw.telemetry import KIND_CPU, KIND_GPU_OP


class _RecordingGovernor(Governor):
    """Captures every event the simulator delivers."""

    name = "recorder"

    def __init__(self):
        super().__init__()
        self.samples = []
        self.op_starts = []
        self.job_starts = []

    def on_job_start(self, job_idx, job):
        self.job_starts.append((job_idx, job.label()))
        return None

    def on_op_start(self, job_idx, op_idx, work):
        self.op_starts.append((job_idx, op_idx, work.name))
        return None

    def on_sample(self, sample):
        self.samples.append(sample)
        return None


class TestEventDelivery:
    def test_all_ops_announced_in_order(self, tx2, small_cnn):
        gov = _RecordingGovernor()
        sim = InferenceSimulator(tx2, sample_period=0.01)
        job = InferenceJob(graph=small_cnn, batch_size=8, n_batches=2)
        sim.run([job], gov)
        n_ops = len(small_cnn.compute_nodes())
        assert len(gov.op_starts) == 2 * n_ops
        indices = [idx for _j, idx, _n in gov.op_starts[:n_ops]]
        assert indices == list(range(n_ops))

    def test_job_start_events(self, tx2, small_cnn):
        gov = _RecordingGovernor()
        sim = InferenceSimulator(tx2)
        jobs = [InferenceJob(graph=small_cnn, batch_size=4, name="a"),
                InferenceJob(graph=small_cnn, batch_size=4, name="b")]
        sim.run(jobs, gov)
        assert gov.job_starts == [(0, "a"), (1, "b")]

    def test_samples_arrive_at_period(self, tx2, small_cnn):
        gov = _RecordingGovernor()
        sim = InferenceSimulator(tx2, sample_period=0.05)
        job = InferenceJob(graph=small_cnn, batch_size=16, n_batches=3)
        result = sim.run([job], gov)
        assert len(gov.samples) >= 2
        gaps = [b.t - a.t for a, b in zip(gov.samples, gov.samples[1:])]
        for gap in gaps:
            assert gap == pytest.approx(0.05, abs=1e-6)

    def test_sample_contents_sane(self, tx2, small_cnn):
        gov = _RecordingGovernor()
        sim = InferenceSimulator(tx2, sample_period=0.02)
        job = InferenceJob(graph=small_cnn, batch_size=16, n_batches=2)
        sim.run([job], gov)
        for s in gov.samples:
            assert 0.0 <= s.gpu_busy <= 1.0
            assert 0.0 <= s.compute_util <= 1.0
            assert s.total_power > 0
            assert 0 <= s.gpu_level < tx2.n_levels


class TestPhaseStructure:
    def test_cpu_then_gpu_alternation(self, tx2, small_cnn):
        sim = InferenceSimulator(tx2, sample_period=1.0)
        job = InferenceJob(graph=small_cnn, batch_size=8, n_batches=2,
                           cpu_work_per_image=5e7)
        r = sim.run([job], StaticGovernor())
        kinds = []
        for seg in r.trace.segments:
            if not kinds or kinds[-1] != seg.kind:
                kinds.append(seg.kind)
        meaningful = [k for k in kinds if k in (KIND_CPU, KIND_GPU_OP)]
        # cpu, gpu, cpu, gpu for two batches.
        assert meaningful == [KIND_CPU, KIND_GPU_OP] * 2

    def test_zero_cpu_work_skips_cpu_phase(self, tx2, small_cnn):
        sim = InferenceSimulator(tx2)
        job = InferenceJob(graph=small_cnn, batch_size=8,
                           cpu_work_per_image=0.0)
        r = sim.run([job], StaticGovernor())
        cpu_time = sum(s.duration for s in r.trace.segments
                       if s.kind == KIND_CPU)
        assert cpu_time == pytest.approx(0.0, abs=1e-9)

    def test_empty_job_list(self, tx2):
        r = InferenceSimulator(tx2).run([], StaticGovernor())
        assert r.report.total_energy == 0.0
        assert r.report.images == 0
