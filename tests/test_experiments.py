"""Experiment driver integration tests at miniature scale.

These exercise the full table/figure machinery end-to-end with a tiny
fitted context so the suite stays fast; the benchmark harness runs the
paper-scale versions.
"""

import pytest

from repro.experiments.common import ExperimentContext
from repro.experiments.figure1 import run_figure1, sparkline
from repro.experiments.figure5 import run_figure5
from repro.experiments.table1 import run_table1
from repro.experiments.table2 import run_table2
from repro.experiments.table3 import measure_switch_overhead, run_table3


@pytest.fixture(scope="module")
def ctx():
    """Tiny fitted context shared by all experiment tests."""
    from repro.core import PowerLens, PowerLensConfig
    from repro.hw import jetson_tx2
    platform = jetson_tx2()
    lens = PowerLens(platform, PowerLensConfig(n_networks=20, seed=3))
    lens.fit()
    return ExperimentContext(platform=platform, lens=lens)


MODELS = ["alexnet", "resnet18"]


class TestTable1:
    def test_rows_and_averages(self, ctx):
        res = run_table1("tx2", models=MODELS, n_runs=2, context=ctx)
        assert [r.model for r in res.rows] == MODELS
        for row in res.rows:
            assert row.blocks >= 1
            assert row.ee_powerlens > 0
            assert set(row.ee_by_method) == {"bim", "fpg_g", "fpg_cg"}
        text = res.format_table()
        assert "Average" in text and "alexnet" in text

    def test_powerlens_beats_bim(self, ctx):
        """The paper's headline: positive gains over the built-in
        governor on every model."""
        res = run_table1("tx2", models=MODELS, n_runs=3, context=ctx)
        for row in res.rows:
            assert row.gain_over("bim") > 0


class TestTable2:
    def test_ablation_losses(self, ctx):
        res = run_table2("tx2", models=["resnet18"], n_runs=2,
                         context=ctx)
        row = res.rows[0]
        # Losses are relative EE deltas; P-R should not beat PowerLens.
        assert row.loss_pr <= 0.05
        text = res.format_table()
        assert "P-R" in text and "P-N" in text


class TestTable3:
    def test_overhead_table(self, ctx):
        res = run_table3("tx2", models=MODELS, context=ctx)
        text = res.format_table()
        assert "clustering" in text
        assert "DVFS switch overhead" in text

    def test_switch_overhead_is_platform_latency(self, ctx):
        overhead = measure_switch_overhead(ctx, n_switches=100)
        assert overhead == pytest.approx(ctx.platform.dvfs_latency_s)


class TestFigure1:
    def test_traces_and_sparklines(self, ctx):
        res = run_figure1("tx2", model="resnet18", n_batches=2,
                          context=ctx)
        assert len(res.traces) == 2
        bim, pl = res.traces
        assert bim.method == "bim"
        assert pl.method == "powerlens"
        # The reactive governor oscillates between ladder ends and
        # spends more energy than the preset plan.
        assert bim.reversal_count >= 1
        assert pl.energy_j < bim.energy_j
        text = res.format_table()
        assert "level trace" in text

    def test_sparkline_rendering(self):
        assert sparkline([], 5) == ""
        line = sparkline([0, 2, 4], 5)
        assert len(line) == 3
        assert line[0] < line[-1]


class TestFigure5:
    def test_taskflow_outcomes(self, ctx):
        res = run_figure5("tx2", n_tasks=4, images_per_task=20,
                          context=ctx)
        assert set(res.outcomes) == {"bim", "fpg_g", "fpg_cg",
                                     "powerlens"}
        for outcome in res.outcomes.values():
            assert outcome.energy_j > 0
            assert outcome.time_s > 0
        text = res.format_table()
        assert "powerlens vs bim" in text

    def test_powerlens_lowest_energy(self, ctx):
        res = run_figure5("tx2", n_tasks=4, images_per_task=20,
                          context=ctx)
        pl = res.outcomes["powerlens"].energy_j
        assert pl < res.outcomes["bim"].energy_j
