"""Result-object behaviour tests (pure data, no simulation)."""

import pytest

from repro.experiments.figure1 import Figure1Result, MethodTrace
from repro.experiments.figure5 import Figure5Result, MethodOutcome
from repro.experiments.table1 import Table1Result, Table1Row
from repro.experiments.table2 import Table2Result, Table2Row


class TestTable1Result:
    def _row(self, pl=2.0, bim=1.0):
        return Table1Row(model="m", blocks=1, ee_powerlens=pl,
                         ee_by_method={"bim": bim, "fpg_g": 1.5,
                                       "fpg_cg": 1.6})

    def test_gain_over(self):
        row = self._row()
        assert row.gain_over("bim") == pytest.approx(1.0)
        assert row.gain_over("fpg_g") == pytest.approx(1 / 3)

    def test_zero_baseline_guarded(self):
        row = self._row(bim=0.0)
        assert row.gain_over("bim") == 0.0

    def test_average_gain(self):
        res = Table1Result(platform="p", rows=[self._row(), self._row(3.0)])
        assert res.average_gain("bim") == pytest.approx((1.0 + 2.0) / 2)

    def test_average_gain_empty(self):
        assert Table1Result(platform="p").average_gain("bim") == 0.0

    def test_format_has_all_rows(self):
        res = Table1Result(platform="p", rows=[self._row()])
        text = res.format_table()
        assert "m " in text or "m\t" in text or "m  " in text
        assert "BIM" in text and "Average" in text


class TestTable2Result:
    def test_averages(self):
        res = Table2Result(platform="p", rows=[
            Table2Row("a", -0.4, -0.1),
            Table2Row("b", -0.2, -0.3),
        ])
        assert res.average("pr") == pytest.approx(-0.3)
        assert res.average("pn") == pytest.approx(-0.2)

    def test_empty(self):
        assert Table2Result(platform="p").average("pr") == 0.0


class TestFigure5Result:
    def _result(self):
        return Figure5Result(platform="p", n_tasks=2, images=100,
                             outcomes={
                                 "bim": MethodOutcome("bim", 100.0, 10.0,
                                                      1.0),
                                 "powerlens": MethodOutcome(
                                     "powerlens", 60.0, 11.0, 5 / 3),
                             })

    def test_relative(self):
        res = self._result()
        assert res.relative("energy_j", "powerlens", "bim") == \
            pytest.approx(-0.4)
        assert res.relative("time_s", "powerlens", "bim") == \
            pytest.approx(0.1)

    def test_relative_zero_baseline(self):
        res = self._result()
        res.outcomes["bim"] = MethodOutcome("bim", 0.0, 0.0, 0.0)
        assert res.relative("energy_j", "powerlens", "bim") == 0.0

    def test_format(self):
        text = self._result().format_table()
        assert "powerlens vs bim" in text


class TestFigure1Trace:
    def test_sampled_levels_interpolates(self):
        trace = MethodTrace(method="x",
                            timeline=[(0.0, 1.0, 2), (1.0, 2.0, 7)],
                            switch_count=1, reversal_count=0,
                            energy_j=1.0, time_s=2.0)
        levels = trace.sampled_levels(n_samples=4)
        assert levels[0] == 2
        assert levels[-1] == 7
        assert len(levels) == 4

    def test_empty_timeline(self):
        trace = MethodTrace(method="x", timeline=[], switch_count=0,
                            reversal_count=0, energy_j=0, time_s=0)
        assert trace.sampled_levels() == []
