"""Numeric gradient checks and layer behaviour tests for the numpy NN
framework."""

import numpy as np
import pytest

from repro.nn import (
    Adam,
    BatchNorm1d,
    Dense,
    Dropout,
    MSELoss,
    ReLU,
    SGD,
    Sequential,
    SoftmaxCrossEntropy,
    Tanh,
    TwoBranchMLP,
    softmax,
)


def _numeric_grad(f, param, i, eps=1e-6):
    orig = param.flat[i]
    param.flat[i] = orig + eps
    l1 = f()
    param.flat[i] = orig - eps
    l2 = f()
    param.flat[i] = orig
    return (l1 - l2) / (2 * eps)


class TestDense:
    def test_forward_shape(self):
        d = Dense(4, 3)
        assert d.forward(np.zeros((7, 4))).shape == (7, 3)

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            Dense(0, 3)

    def test_gradient_check(self):
        rng = np.random.default_rng(0)
        d = Dense(5, 3, rng=rng)
        x = rng.normal(size=(6, 5))
        y = np.array([0, 1, 2, 0, 1, 2])
        loss_fn = SoftmaxCrossEntropy()

        def f():
            return loss_fn.forward(d.forward(x), y)[0]

        loss, dlogits = loss_fn.forward(d.forward(x), y)
        d.backward(dlogits)
        for param, grad in ((d.W, d.dW), (d.b, d.db)):
            for i in (0, param.size - 1, param.size // 2):
                num = _numeric_grad(f, param, i)
                assert grad.flat[i] == pytest.approx(num, abs=1e-6)

    def test_input_gradient(self):
        rng = np.random.default_rng(1)
        d = Dense(4, 2, rng=rng)
        x = rng.normal(size=(3, 4))
        y = np.array([0, 1, 0])
        loss_fn = SoftmaxCrossEntropy()
        _, dlogits = loss_fn.forward(d.forward(x), y)
        dx = d.backward(dlogits)
        eps = 1e-6
        i = 2
        x2 = x.copy()
        x2.flat[i] += eps
        l1 = loss_fn.forward(d.forward(x2), y)[0]
        x2.flat[i] -= 2 * eps
        l2 = loss_fn.forward(d.forward(x2), y)[0]
        assert dx.flat[i] == pytest.approx((l1 - l2) / (2 * eps), abs=1e-6)


class TestActivations:
    def test_relu_masks_negative(self):
        r = ReLU()
        out = r.forward(np.array([[-1.0, 2.0]]))
        assert np.array_equal(out, [[0.0, 2.0]])
        grad = r.backward(np.array([[1.0, 1.0]]))
        assert np.array_equal(grad, [[0.0, 1.0]])

    def test_tanh_gradient(self):
        t = Tanh()
        x = np.array([[0.3, -0.7]])
        y = t.forward(x)
        g = t.backward(np.ones_like(x))
        assert np.allclose(g, 1 - np.tanh(x) ** 2)


class TestDropout:
    def test_invalid_p(self):
        with pytest.raises(ValueError):
            Dropout(p=1.0)

    def test_eval_mode_identity(self):
        d = Dropout(p=0.5)
        d.eval()
        x = np.ones((4, 4))
        assert np.array_equal(d.forward(x), x)

    def test_train_mode_scales(self):
        d = Dropout(p=0.5, seed=0)
        d.train()
        x = np.ones((200, 50))
        out = d.forward(x)
        # Inverted dropout: surviving activations scaled by 1/keep.
        kept = out[out > 0]
        assert np.allclose(kept, 2.0)
        assert out.mean() == pytest.approx(1.0, abs=0.05)

    def test_backward_uses_same_mask(self):
        d = Dropout(p=0.5, seed=0)
        d.train()
        x = np.ones((10, 10))
        out = d.forward(x)
        grad = d.backward(np.ones_like(x))
        assert np.array_equal(grad == 0, out == 0)


class TestBatchNorm:
    def test_normalizes_in_train_mode(self):
        bn = BatchNorm1d(3)
        rng = np.random.default_rng(0)
        x = rng.normal(5.0, 3.0, size=(256, 3))
        out = bn.forward(x)
        assert np.allclose(out.mean(axis=0), 0.0, atol=1e-7)
        assert np.allclose(out.std(axis=0), 1.0, atol=1e-3)

    def test_running_stats_used_in_eval(self):
        bn = BatchNorm1d(2, momentum=0.0)  # running = last batch
        x = np.array([[1.0, 10.0], [3.0, 30.0]])
        bn.forward(x)
        bn.eval()
        out = bn.forward(np.array([[2.0, 20.0]]))
        assert np.allclose(out, 0.0, atol=1e-3)

    def test_gradient_check(self):
        rng = np.random.default_rng(2)
        bn = BatchNorm1d(4)
        dense = Dense(4, 2, rng=rng)
        x = rng.normal(size=(8, 4))
        y = np.array([0, 1] * 4)
        loss_fn = SoftmaxCrossEntropy()

        def f():
            return loss_fn.forward(dense.forward(bn.forward(x)), y)[0]

        _, dlog = loss_fn.forward(dense.forward(bn.forward(x)), y)
        bn.backward(dense.backward(dlog))
        for i in (0, 3):
            num = _numeric_grad(f, bn.gamma, i, eps=1e-5)
            assert bn.dgamma[i] == pytest.approx(num, abs=1e-4)


class TestLosses:
    def test_softmax_rows_sum_to_one(self):
        p = softmax(np.random.default_rng(0).normal(size=(5, 7)))
        assert np.allclose(p.sum(axis=1), 1.0)

    def test_softmax_numerically_stable(self):
        p = softmax(np.array([[1000.0, 1000.0]]))
        assert np.allclose(p, 0.5)

    def test_ce_perfect_prediction_near_zero(self):
        logits = np.array([[100.0, 0.0], [0.0, 100.0]])
        loss, _ = SoftmaxCrossEntropy().forward(logits, np.array([0, 1]))
        assert loss == pytest.approx(0.0, abs=1e-6)

    def test_ce_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            SoftmaxCrossEntropy().forward(np.zeros(3), np.array([0]))

    def test_mse(self):
        loss, grad = MSELoss().forward(np.array([1.0, 2.0]),
                                       np.array([0.0, 0.0]))
        assert loss == pytest.approx(2.5)
        assert np.allclose(grad, [1.0, 2.0])


class TestOptimizers:
    def test_sgd_moves_against_gradient(self):
        p = np.array([1.0])
        g = np.array([0.5])
        opt = SGD([p], [g], lr=0.1, momentum=0.0)
        opt.step()
        assert p[0] == pytest.approx(0.95)

    def test_adam_converges_on_quadratic(self):
        p = np.array([5.0])
        g = np.zeros(1)
        opt = Adam([p], [g], lr=0.1)
        for _ in range(500):
            g[...] = 2 * p  # d/dp of p^2
            opt.step()
        assert abs(p[0]) < 1e-2

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            Adam([np.zeros(2)], [], lr=0.1)

    def test_zero_grad(self):
        g = np.ones(3)
        opt = SGD([np.zeros(3)], [g], lr=0.1)
        opt.zero_grad()
        assert np.array_equal(g, np.zeros(3))


class TestContainers:
    def test_mlp_builder_validates(self):
        with pytest.raises(ValueError):
            Sequential.mlp([4])

    def test_sequential_gradient_check(self):
        rng = np.random.default_rng(3)
        m = Sequential.mlp([4, 8, 3], seed=4)
        x = rng.normal(size=(5, 4))
        y = np.array([0, 1, 2, 0, 1])
        loss_fn = SoftmaxCrossEntropy()

        def f():
            return loss_fn.forward(m.forward(x), y)[0]

        _, dlog = loss_fn.forward(m.forward(x), y)
        m.backward(dlog)
        p = m.params()[0]
        g = m.grads()[0]
        num = _numeric_grad(f, p, 1)
        assert g.flat[1] == pytest.approx(num, abs=1e-6)

    def test_two_branch_input_validation(self):
        m = TwoBranchMLP(4, 3, 2)
        with pytest.raises(ValueError):
            m.forward(np.zeros((2, 5)), np.zeros((2, 3)))
        with pytest.raises(ValueError):
            m.forward(np.zeros((2, 4)), np.zeros((2, 9)))

    def test_two_branch_gradient_check(self):
        rng = np.random.default_rng(5)
        m = TwoBranchMLP(4, 3, 2, stage1_dims=(6,), stage2_dims=(5,),
                         dropout=0.0, seed=6)
        xs = rng.normal(size=(6, 4))
        xt = rng.normal(size=(6, 3))
        y = np.array([0, 1, 0, 1, 0, 1])
        loss_fn = SoftmaxCrossEntropy()

        def f():
            return loss_fn.forward(m.forward(xs, xt), y)[0]

        _, dlog = loss_fn.forward(m.forward(xs, xt), y)
        m.backward(dlog)
        # Check a stage-1 parameter: gradient must flow through the
        # concat fusion point.
        p = m.stage1.params()[0]
        g = m.stage1.grads()[0]
        num = _numeric_grad(f, p, 2)
        assert g.flat[2] == pytest.approx(num, abs=1e-6)

    def test_train_eval_propagate(self):
        m = Sequential.mlp([4, 8, 2], dropout=0.5)
        m.eval()
        assert all(not layer.training for layer in m.layers)
        m.train()
        assert all(layer.training for layer in m.layers)
