"""Serialization round-trip tests, including a property-based round trip
over the random DNN generator."""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.graph import (
    Graph,
    GraphError,
    graph_from_dict,
    graph_to_dict,
    load_graph,
    save_graph,
)
from repro.models import RandomDNNGenerator


def _assert_graphs_equal(a: Graph, b: Graph) -> None:
    assert a.name == b.name
    assert a.node_names() == b.node_names()
    for node_a, node_b in zip(a.nodes(), b.nodes()):
        assert node_a.op == node_b.op
        assert node_a.attrs == node_b.attrs
        assert node_a.inputs == node_b.inputs
        assert node_a.output_shape == node_b.output_shape


def test_roundtrip_small_cnn(small_cnn):
    _assert_graphs_equal(small_cnn, graph_from_dict(graph_to_dict(small_cnn)))


def test_file_roundtrip(tmp_path, small_cnn):
    path = tmp_path / "g.json"
    save_graph(small_cnn, path)
    _assert_graphs_equal(small_cnn, load_graph(path))


def test_malformed_payload_raises():
    with pytest.raises(GraphError):
        graph_from_dict({"name": "x"})
    with pytest.raises(GraphError):
        graph_from_dict({"name": "x", "nodes": [{"name": "a"}]})
    with pytest.raises(GraphError):
        graph_from_dict({
            "name": "x",
            "nodes": [{"name": "a", "op": "not_an_op", "attrs": {},
                       "inputs": [], "output_shape": [1]}],
        })


def test_tuples_restored_as_tuples(small_cnn):
    g2 = graph_from_dict(graph_to_dict(small_cnn))
    conv = next(n for n in g2.compute_nodes() if n.op.value == "conv2d")
    assert isinstance(conv.attrs.kernel, tuple)
    assert isinstance(conv.output_shape, tuple)


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(0, 10_000))
def test_random_graph_roundtrip(seed):
    """Property: any generator output survives dict round-trip intact."""
    graph = RandomDNNGenerator(seed=seed).generate()
    _assert_graphs_equal(graph, graph_from_dict(graph_to_dict(graph)))
