"""Dataset persistence: property-based .npz round-trips, the
ResourceWarning-clean load fix, and the on-disk generation cache."""

import gc
import json
import warnings

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core import PowerLens, PowerLensConfig
from repro.core.datasets import DatasetA, DatasetB, GenerationStats
from repro.core.persistence import (
    DATASET_CACHE_ENV,
    DatasetCache,
    dataset_cache_key,
    default_cache_dir,
    resolve_cache_dir,
)
from repro.core.schemes import ClusteringScheme, default_scheme_grid
from repro.hw import jetson_tx2
from repro.models.random_gen import RandomDNNConfig

_FLOAT_DTYPES = st.sampled_from([np.float32, np.float64])
_INT_DTYPES = st.sampled_from([np.int32, np.int64])


def _array(rows, cols, dtype, seed):
    rng = np.random.default_rng(seed)
    return rng.normal(size=(rows, cols)).astype(dtype)


@st.composite
def dataset_a_strategy(draw):
    rows = draw(st.integers(0, 6))
    d_struct = draw(st.integers(1, 5))
    d_stats = draw(st.integers(1, 5))
    n_schemes = draw(st.integers(1, 12))
    seed = draw(st.integers(0, 2**31 - 1))
    fdtype = draw(_FLOAT_DTYPES)
    idtype = draw(_INT_DTYPES)
    rng = np.random.default_rng(seed)
    qualities = None
    if draw(st.booleans()):
        qualities = _array(rows, n_schemes, fdtype, seed + 1)
    return DatasetA(
        x_struct=_array(rows, d_struct, fdtype, seed),
        x_stats=_array(rows, d_stats, fdtype, seed + 2),
        y=rng.integers(0, n_schemes, size=rows).astype(idtype),
        n_schemes=n_schemes,
        qualities=qualities,
    )


@st.composite
def dataset_b_strategy(draw):
    rows = draw(st.integers(0, 8))
    cols = draw(st.integers(1, 6))
    n_levels = draw(st.integers(2, 14))
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    return DatasetB(
        x=_array(rows, cols, draw(_FLOAT_DTYPES), seed),
        y=rng.integers(0, n_levels, size=rows).astype(draw(_INT_DTYPES)),
        n_levels=n_levels,
    )


def _assert_array_identical(x, y):
    assert x.shape == y.shape
    assert x.dtype == y.dtype
    assert x.tobytes() == y.tobytes()


class TestRoundTripProperties:
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(dataset=dataset_a_strategy())
    def test_dataset_a_roundtrip(self, dataset, tmp_path):
        """Property: save/load preserves shapes, dtypes, bytes and the
        optional qualities field — including zero-row datasets."""
        path = tmp_path / "a.npz"
        dataset.save(path)
        loaded = DatasetA.load(path)
        _assert_array_identical(dataset.x_struct, loaded.x_struct)
        _assert_array_identical(dataset.x_stats, loaded.x_stats)
        _assert_array_identical(dataset.y, loaded.y)
        assert loaded.n_schemes == dataset.n_schemes
        if dataset.qualities is None:
            assert loaded.qualities is None
        else:
            _assert_array_identical(dataset.qualities, loaded.qualities)

    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(dataset=dataset_b_strategy())
    def test_dataset_b_roundtrip(self, dataset, tmp_path):
        path = tmp_path / "b.npz"
        dataset.save(path)
        loaded = DatasetB.load(path)
        _assert_array_identical(dataset.x, loaded.x)
        _assert_array_identical(dataset.y, loaded.y)
        assert loaded.n_levels == dataset.n_levels

    def test_load_is_resourcewarning_clean(self, tmp_path):
        """Regression: DatasetA/B.load used to leak the open NpzFile
        handle (np.load without a context manager)."""
        a = DatasetA(x_struct=np.ones((2, 3)), x_stats=np.ones((2, 2)),
                     y=np.array([0, 1]), n_schemes=2,
                     qualities=np.ones((2, 2)))
        b = DatasetB(x=np.ones((2, 3)), y=np.array([0, 1]), n_levels=4)
        a.save(tmp_path / "a.npz")
        b.save(tmp_path / "b.npz")
        with warnings.catch_warnings():
            warnings.simplefilter("error", ResourceWarning)
            DatasetA.load(tmp_path / "a.npz")
            DatasetB.load(tmp_path / "b.npz")
            gc.collect()


def _key(n_networks=5, seed=0, **overrides):
    params = dict(batch_size=16, latency_slack=0.25, alpha=0.6,
                  lam=0.05, n_networks=n_networks, seed=seed)
    params.update(overrides)
    return dataset_cache_key(jetson_tx2(), default_scheme_grid(),
                             RandomDNNConfig(), **params)


def _sample_entry():
    a = DatasetA(x_struct=np.ones((3, 4)), x_stats=np.zeros((3, 2)),
                 y=np.array([0, 1, 2]), n_schemes=3,
                 qualities=np.ones((3, 3)))
    b = DatasetB(x=np.ones((5, 6)), y=np.array([0, 1, 2, 3, 0]),
                 n_levels=5)
    stats = GenerationStats(n_networks=3, n_blocks=5, wall_time_s=1.5,
                            blocks_per_network=[2, 2, 1], n_jobs=4)
    return a, b, stats


class TestCacheKey:
    def test_key_is_stable(self):
        assert _key() == _key()

    def test_key_tracks_every_input(self):
        base = _key()
        assert _key(seed=1) != base
        assert _key(n_networks=6) != base
        assert _key(batch_size=8) != base
        assert _key(latency_slack=0.3) != base
        assert _key(alpha=0.5) != base
        assert _key(lam=0.1) != base

    def test_key_tracks_platform_scheme_and_dnn_config(self):
        base = _key()
        agx_key = dataset_cache_key(
            jetson_tx2().with_overrides(c_eff=9.9e-9),
            default_scheme_grid(), RandomDNNConfig(), batch_size=16,
            latency_slack=0.25, alpha=0.6, lam=0.05, n_networks=5,
            seed=0)
        small_grid = dataset_cache_key(
            jetson_tx2(), [ClusteringScheme(0.3, 2)], RandomDNNConfig(),
            batch_size=16, latency_slack=0.25, alpha=0.6, lam=0.05,
            n_networks=5, seed=0)
        small_dnns = dataset_cache_key(
            jetson_tx2(), default_scheme_grid(),
            RandomDNNConfig(max_stages=3), batch_size=16,
            latency_slack=0.25, alpha=0.6, lam=0.05, n_networks=5,
            seed=0)
        assert len({base, agx_key, small_grid, small_dnns}) == 4


class TestDatasetCache:
    def test_miss_then_hit(self, tmp_path):
        cache = DatasetCache(tmp_path)
        key = _key()
        assert not cache.has(key)
        assert cache.load(key) is None

        a, b, stats = _sample_entry()
        cache.store(key, a, b, stats)
        assert cache.has(key)
        got = cache.load(key)
        assert got is not None
        a2, b2, stats2 = got
        _assert_array_identical(a.x_struct, a2.x_struct)
        _assert_array_identical(a.qualities, a2.qualities)
        _assert_array_identical(b.x, b2.x)
        _assert_array_identical(b.y, b2.y)
        assert stats2.cache_hit is True
        assert stats2.n_networks == 3
        assert stats2.n_blocks == 5
        assert stats2.wall_time_s == pytest.approx(1.5)
        assert stats2.blocks_per_network == [2, 2, 1]

    def test_key_collision_detected(self, tmp_path):
        """An entry whose manifest records a different full key (hash
        collision on the filename, or tampering) is a miss."""
        cache = DatasetCache(tmp_path)
        key = _key()
        a, b, stats = _sample_entry()
        manifest = cache.store(key, a, b, stats)
        meta = json.loads(manifest.read_text())
        meta["key"] = "somebody-elses-key"
        manifest.write_text(json.dumps(meta))
        assert not cache.has(key)
        assert cache.load(key) is None

    def test_pre_stage_seconds_manifest_loads(self, tmp_path):
        """Regression: manifests written before stage timings were
        recorded lack ``stats.stage_seconds`` (or the whole ``stats``
        block); loading such an entry must succeed, not KeyError."""
        cache = DatasetCache(tmp_path)
        key = _key()
        a, b, stats = _sample_entry()
        manifest = cache.store(key, a, b, stats)
        meta = json.loads(manifest.read_text())
        del meta["stats"]["stage_seconds"]
        manifest.write_text(json.dumps(meta))
        got = cache.load(key)
        assert got is not None
        assert got[2].cache_hit is True
        assert got[2].stage_seconds == {}

        meta["stats"] = None
        manifest.write_text(json.dumps(meta))
        got = cache.load(key)
        assert got is not None
        # Counts fall back to what the arrays themselves say.
        assert got[2].n_networks == len(a)
        assert got[2].n_blocks == len(b)
        assert got[2].stage_seconds == {}

    def test_corrupt_manifest_is_a_miss(self, tmp_path):
        cache = DatasetCache(tmp_path)
        key = _key()
        a, b, stats = _sample_entry()
        manifest = cache.store(key, a, b, stats)
        manifest.write_text("{not json")
        assert cache.load(key) is None

    def test_clear(self, tmp_path):
        cache = DatasetCache(tmp_path)
        key = _key()
        cache.store(key, *_sample_entry())
        assert cache.clear() == 3
        assert not cache.has(key)
        assert DatasetCache(tmp_path / "never-created").clear() == 0

    def test_resolve_cache_dir(self, tmp_path, monkeypatch):
        monkeypatch.delenv(DATASET_CACHE_ENV, raising=False)
        assert resolve_cache_dir(None) is None
        assert resolve_cache_dir(tmp_path) == tmp_path
        monkeypatch.setenv(DATASET_CACHE_ENV, str(tmp_path / "env"))
        assert resolve_cache_dir(None) == tmp_path / "env"
        # Explicit argument beats the environment.
        assert resolve_cache_dir(tmp_path) == tmp_path
        assert default_cache_dir().name == "datasets"


class TestFitLevelCache:
    def test_second_fit_hits_cache_and_skips_generation(self, tx2,
                                                        tmp_path):
        """Acceptance: a repeated fit() with an identical configuration
        loads the corpus from disk instead of regenerating."""
        config = PowerLensConfig(
            n_networks=5, seed=13, cache_dir=str(tmp_path),
            dnn_config=RandomDNNConfig(min_stages=2, max_stages=3,
                                       max_blocks_per_stage=3))
        first = PowerLens(tx2, config)
        summary1 = first.fit()
        assert summary1.generation.cache_hit is False

        second = PowerLens(tx2, config)
        summary2 = second.fit()
        assert summary2.generation.cache_hit is True
        # The cached stats carry the original generation cost, and the
        # corpus is the same one the first fit trained on.
        assert summary2.generation.n_networks == \
            summary1.generation.n_networks
        assert summary2.generation.n_blocks == summary1.generation.n_blocks
        assert summary2.generation.blocks_per_network == \
            summary1.generation.blocks_per_network
        # The stage timer still records the (now tiny) load-from-disk
        # pass...
        assert second.overhead.total("dataset generation") > 0
        # ...which is far below the miss cost whenever generation is
        # non-trivial; at this corpus size just require it not to exceed
        # the first run.
        assert second.overhead.total("dataset generation") <= \
            first.overhead.total("dataset generation")

    def test_use_cache_false_regenerates(self, tx2, tmp_path):
        config = PowerLensConfig(
            n_networks=4, seed=13, cache_dir=str(tmp_path),
            dnn_config=RandomDNNConfig(min_stages=2, max_stages=3,
                                       max_blocks_per_stage=3))
        PowerLens(tx2, config).fit()
        lens = PowerLens(tx2, config)
        summary = lens.fit(use_cache=False)
        assert summary.generation.cache_hit is False
