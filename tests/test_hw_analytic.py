"""Closed-form evaluator tests."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.hw.analytic import AnalyticEvaluator
from repro.hw.perf import LatencyModel, OpWork


@pytest.fixture()
def evaluator(tx2):
    return AnalyticEvaluator(tx2)


class TestProfile:
    def test_profile_shapes(self, evaluator, small_cnn, tx2):
        p = evaluator.graph_profile(small_cnn, batch_size=8)
        assert p.times.shape == (tx2.n_levels,)
        assert p.energies.shape == (tx2.n_levels,)
        assert np.all(p.times > 0)
        assert np.all(p.energies > 0)

    def test_times_non_increasing_in_level(self, evaluator, small_cnn):
        p = evaluator.graph_profile(small_cnn, batch_size=8)
        assert np.all(np.diff(p.times) <= 1e-12)

    def test_profile_matches_latency_model(self, evaluator, small_cnn,
                                           tx2):
        """Per-level time must equal the scalar roofline model summed
        over operators."""
        latency = LatencyModel(tx2)
        p = evaluator.graph_profile(small_cnn, batch_size=8)
        for level in (0, 5, tx2.max_level):
            expected = latency.graph_time(small_cnn, level, batch_size=8)
            assert p.times[level] == pytest.approx(expected, rel=1e-9)

    def test_block_profile_sums_to_graph(self, evaluator, small_cnn):
        n = len(small_cnn.compute_nodes())
        half = n // 2
        p_a = evaluator.block_profile(small_cnn, range(half), 8)
        p_b = evaluator.block_profile(small_cnn, range(half, n), 8)
        p_full = evaluator.graph_profile(small_cnn, 8)
        assert np.allclose(p_a.times + p_b.times, p_full.times)
        assert np.allclose(p_a.energies + p_b.energies, p_full.energies)

    def test_ee_is_reciprocal_energy(self, evaluator, small_cnn):
        p = evaluator.graph_profile(small_cnn, 8)
        assert np.allclose(p.ee, 1.0 / p.energies)


class TestBestLevel:
    def test_feasibility_respected(self, evaluator, small_cnn):
        for slack in (0.0, 0.1, 0.25, 1.0):
            p = evaluator.graph_profile(small_cnn, 8)
            lvl = evaluator.best_level(p, latency_slack=slack)
            assert p.times[lvl] <= (1 + slack) * p.times[-1] * (1 + 1e-9)

    def test_zero_slack_pins_near_max(self, evaluator, small_cnn, tx2):
        p = evaluator.graph_profile(small_cnn, 8)
        lvl = evaluator.best_level(p, latency_slack=0.0)
        # With no slowdown budget only levels as fast as fmax qualify.
        assert p.times[lvl] <= p.times[tx2.max_level] * (1 + 1e-9)

    def test_larger_slack_never_worsens_ee(self, evaluator, small_cnn):
        p = evaluator.graph_profile(small_cnn, 8)
        ee_small = p.ee[evaluator.best_level(p, 0.1)]
        ee_large = p.ee[evaluator.best_level(p, 0.5)]
        # The tolerance tie-break may pick a slightly lower-EE level
        # within 0.5%, so compare with that allowance.
        assert ee_large >= ee_small * 0.995

    def test_tolerance_prefers_higher_level(self, evaluator, small_cnn):
        """Among EE-near-ties the faster (higher) level is chosen."""
        p = evaluator.graph_profile(small_cnn, 8)
        strict = evaluator.best_level(p, 0.25, ee_tolerance=0.0)
        loose = evaluator.best_level(p, 0.25, ee_tolerance=0.05)
        assert loose >= strict

    def test_best_level_for_block(self, evaluator, small_cnn, tx2):
        lvl = evaluator.best_level_for_block(small_cnn, [0, 1, 2],
                                             batch_size=8)
        assert 0 <= lvl <= tx2.max_level


class TestPlanEnergy:
    def test_uniform_plan_matches_graph_profile(self, evaluator,
                                                small_cnn):
        n = len(small_cnn.compute_nodes())
        p = evaluator.graph_profile(small_cnn, 8)
        e, t = evaluator.plan_energy_time(
            small_cnn, [list(range(n))], [5], batch_size=8)
        assert e == pytest.approx(float(p.energies[5]))
        assert t == pytest.approx(float(p.times[5]))

    def test_switch_cost_added_between_blocks(self, evaluator, small_cnn,
                                              tx2):
        n = len(small_cnn.compute_nodes())
        blocks = [list(range(n // 2)), list(range(n // 2, n))]
        e_same, t_same = evaluator.plan_energy_time(small_cnn, blocks,
                                                    [5, 5], 8)
        e_diff, t_diff = evaluator.plan_energy_time(small_cnn, blocks,
                                                    [5, 8], 8)
        # Same level: no boundary cost; different levels: one stall.
        assert t_diff - t_same != pytest.approx(0.0) or \
            e_diff != pytest.approx(e_same)
        p = evaluator.graph_profile(small_cnn, 8)

    def test_mismatched_lengths_rejected(self, evaluator, small_cnn):
        with pytest.raises(ValueError):
            evaluator.plan_energy_time(small_cnn, [[0]], [1, 2], 8)

    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(level=st.integers(0, 12), batch=st.integers(1, 32))
    def test_energy_time_positive(self, evaluator, small_cnn, level,
                                  batch):
        n = len(small_cnn.compute_nodes())
        e, t = evaluator.plan_energy_time(small_cnn, [list(range(n))],
                                          [level], batch)
        assert e > 0 and t > 0


class TestOverheadPower:
    def test_overhead_includes_board(self, evaluator, tx2):
        assert evaluator.overhead_power >= tx2.board_power
