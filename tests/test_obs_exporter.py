"""Live exporter and flight recorder: endpoint correctness, clean
shutdown (no leaked threads or sockets), off-by-default, and the
bounded snapshot ring."""

import json
import socket
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.obs import Observability
from repro.obs.exporter import (
    ENV_EXPORTER_PORT,
    ENV_FLIGHT_RECORDER,
    FlightRecorder,
    MetricsExporter,
)
from repro.obs.metrics import parse_prometheus_text

pytestmark = pytest.mark.obs


def _bundle() -> Observability:
    obs = Observability.enabled_bundle()
    obs.metrics.counter("powerlens_test_events_total").inc(7)
    obs.metrics.gauge("powerlens_test_level").set(4)
    with obs.tracer.span("outer", stage="test"):
        with obs.tracer.span("inner"):
            pass
    return obs


def _get(url: str, timeout: float = 5.0):
    with urllib.request.urlopen(url, timeout=timeout) as resp:
        return resp.status, resp.headers.get("Content-Type", ""), \
            resp.read().decode("utf-8")


class TestMetricsExporter:
    def test_endpoints_serve_live_state(self):
        obs = _bundle()
        with MetricsExporter(obs) as exporter:
            status, ctype, body = _get(exporter.url + "metrics")
            assert status == 200
            assert ctype.startswith("text/plain")
            assert "version=0.0.4" in ctype
            parsed = parse_prometheus_text(body)
            assert parsed.counter(
                "powerlens_test_events_total").value == 7

            status, ctype, body = _get(exporter.url + "metrics.json")
            assert status == 200
            assert ctype == "application/json"
            assert "powerlens_test_level" in json.loads(body)

            status, _, body = _get(exporter.url + "healthz")
            assert (status, body) == (200, "ok\n")

            with pytest.raises(urllib.error.HTTPError) as err:
                _get(exporter.url + "nope")
            assert err.value.code == 404
            err.value.close()  # the error object owns the response fd

            # Counters minted after start are served on the next scrape.
            obs.metrics.counter("powerlens_test_late_total").inc()
            _, _, body = _get(exporter.url + "metrics")
            assert "powerlens_test_late_total" in body

    def test_sse_stream_replays_buffered_spans(self):
        obs = _bundle()
        exporter = MetricsExporter(obs).start()
        try:
            conn = socket.create_connection(
                ("127.0.0.1", exporter.port), timeout=5.0)
            conn.sendall(b"GET /spans HTTP/1.0\r\n\r\n")
            conn.settimeout(5.0)
            data = b""
            # Read until both buffered spans have been replayed (they
            # may arrive in separate chunks under load).
            while not (b'"outer"' in data and b'"inner"' in data
                       and data.endswith(b"\n\n")):
                chunk = conn.recv(4096)
                if not chunk:
                    break
                data = data + chunk
            conn.close()
            text = data.decode("utf-8")
            assert "Content-Type: text/event-stream" in text
            payloads = [json.loads(line[len("data: "):])
                        for line in text.splitlines()
                        if line.startswith("data: ")]
            assert {p["name"] for p in payloads} >= {"outer", "inner"}
        finally:
            exporter.stop()

    def test_clean_shutdown_leaks_nothing(self):
        before = set(threading.enumerate())
        obs = _bundle()
        exporter = MetricsExporter(obs).start()
        port = exporter.port
        _get(exporter.url + "healthz")
        exporter.stop()
        exporter.stop()  # idempotent
        leaked = [t for t in set(threading.enumerate()) - before
                  if t.is_alive()]
        assert leaked == []
        # The socket is closed: a fresh connection must be refused.
        with pytest.raises(OSError):
            socket.create_connection(("127.0.0.1", port), timeout=1.0)

    def test_double_start_rejected_and_not_running_errors(self):
        exporter = MetricsExporter(_bundle())
        with pytest.raises(RuntimeError, match="not running"):
            exporter.port
        exporter.start()
        try:
            with pytest.raises(RuntimeError, match="already"):
                exporter.start()
        finally:
            exporter.stop()

    def test_concurrent_exporters_never_collide(self):
        """Port-collision regression: exporters default to port 0 and
        read the ephemeral port back from the bound socket, so any
        number can run side-by-side (parallel test workers, a fleet
        simulation next to an experiment run)."""
        exporters = [MetricsExporter(_bundle()).start() for _ in range(3)]
        try:
            ports = [e.port for e in exporters]
            assert len(set(ports)) == len(ports)
            assert all(p != 0 for p in ports)
            for e in exporters:
                status, _, _ = _get(e.url + "healthz")
                assert status == 200
        finally:
            for e in exporters:
                e.stop()

    def test_off_by_default(self):
        """No experiment path starts an exporter on its own: the only
        construction sites are the CLI flag/env handlers."""
        from repro.governors import OndemandGovernor
        from repro.hw import InferenceJob, InferenceSimulator, jetson_tx2
        from tests.conftest import build_small_cnn
        before = {t.name for t in threading.enumerate()}
        sim = InferenceSimulator(jetson_tx2(), obs=_bundle())
        sim.run([InferenceJob(graph=build_small_cnn(), n_batches=1)],
                OndemandGovernor())
        after = {t.name for t in threading.enumerate()}
        assert not any(n.startswith("powerlens-") for n in after - before)
        # The env-var names the CLI consults are part of the contract.
        assert ENV_EXPORTER_PORT == "POWERLENS_EXPORTER_PORT"
        assert ENV_FLIGHT_RECORDER == "POWERLENS_FLIGHT_RECORDER"


class TestFlightRecorder:
    def test_ring_is_bounded_and_final_snapshot_written(self, tmp_path):
        obs = _bundle()
        recorder = FlightRecorder(obs, tmp_path / "fr",
                                  interval_s=0.01, max_snapshots=3)
        recorder.start()
        deadline = time.monotonic() + 5.0
        while recorder.seq < 6 and time.monotonic() < deadline:
            time.sleep(0.01)
        recorder.stop()
        assert recorder.seq >= 6
        files = recorder.snapshot_files()
        assert 1 <= len(files) <= 3
        # The ring really dropped the oldest snapshots.
        assert files[0].name != "flight-000000.json"
        last = json.loads(files[-1].read_text())
        assert last["final"] is True
        assert last["format"] == "powerlens-flight"
        assert last["metrics"]["powerlens_test_events_total"]["value"] == 7
        assert last["span_totals"]  # span accounting made it to disk
        # Sequence numbers on disk are consecutive and increasing.
        seqs = [json.loads(f.read_text())["seq"] for f in files]
        assert seqs == sorted(seqs)

    def test_stop_without_ticks_still_records_final_state(self, tmp_path):
        recorder = FlightRecorder(_bundle(), tmp_path, interval_s=60.0)
        recorder.start()
        recorder.stop()
        recorder.stop()  # idempotent
        files = recorder.snapshot_files()
        assert len(files) == 1
        assert json.loads(files[0].read_text())["final"] is True

    def test_write_failure_disarms_instead_of_raising(self, tmp_path):
        recorder = FlightRecorder(_bundle(), tmp_path, interval_s=60.0)
        recorder.start()
        # Sabotage the target directory out from under the recorder.
        recorder.directory = tmp_path / "gone" / "deeper"
        recorder.stop()
        assert recorder.failed is True

    def test_invalid_configuration_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="interval"):
            FlightRecorder(_bundle(), tmp_path, interval_s=0.0)
        with pytest.raises(ValueError, match="max_snapshots"):
            FlightRecorder(_bundle(), tmp_path, max_snapshots=0)

    def test_no_thread_leak(self, tmp_path):
        before = set(threading.enumerate())
        with FlightRecorder(_bundle(), tmp_path, interval_s=0.01):
            time.sleep(0.03)
        leaked = [t for t in set(threading.enumerate()) - before
                  if t.is_alive()]
        assert leaked == []


class TestRequestsEndpoint:
    """The ``/requests`` SSE feed of sampled request completions."""

    def _read_sse(self, port: int, path: str = "/requests",
                  until: bytes = b"\n\n") -> str:
        conn = socket.create_connection(("127.0.0.1", port),
                                        timeout=5.0)
        try:
            conn.sendall(f"GET {path} HTTP/1.0\r\n\r\n".encode())
            conn.settimeout(5.0)
            data = b""
            while not (until in data and data.endswith(b"\n\n")):
                chunk = conn.recv(4096)
                if not chunk:
                    break
                data = data + chunk
        finally:
            conn.close()
        return data.decode("utf-8")

    def test_404_when_no_request_log_attached(self):
        with MetricsExporter(_bundle()) as exporter:
            assert exporter.request_log is None
            with pytest.raises(urllib.error.HTTPError) as err:
                _get(exporter.url + "requests")
            assert err.value.code == 404
            err.value.close()

    def test_streams_attached_completion_records(self):
        records = [
            {"type": "request", "request_id": 0,
             "outcome": "completed", "latency_s": 0.25},
            {"type": "request", "request_id": 1,
             "outcome": "expired", "latency_s": 0.5},
        ]
        with MetricsExporter(_bundle(),
                             request_log=records) as exporter:
            text = self._read_sse(exporter.port,
                                  until=b'"request_id": 1')
            assert "Content-Type: text/event-stream" in text
            assert "event: request" in text
            payloads = [json.loads(line[len("data: "):])
                        for line in text.splitlines()
                        if line.startswith("data: ")]
            assert [p["request_id"] for p in payloads[:2]] == [0, 1]
            assert payloads[1]["outcome"] == "expired"

    def test_serving_run_feeds_live_endpoint(self):
        """End to end: a traced serving run's completion records are
        served after the run (the CLI attaches the same list before
        the run starts, so mid-run records stream live)."""
        from repro.serving import (DeviceConfig, Fleet, FleetScheduler,
                                   RequestTracer, SchedulerConfig,
                                   make_trace)
        from tests.conftest import build_small_cnn

        fleet = Fleet.build([DeviceConfig("tx2-0", "tx2")],
                            governor="powerlens", fleet_seed=7)
        fleet.add_graph(build_small_cnn("small_cnn"))
        tracer = RequestTracer()
        with MetricsExporter(
                _bundle(),
                request_log=tracer.completion_records) as exporter:
            trace = make_trace("poisson", rate_rps=20, duration_s=0.3,
                               models=["small_cnn"], seed=7)
            result = FleetScheduler(
                fleet, SchedulerConfig(policy="fifo"),
                request_tracer=tracer).run(trace)
            assert result.report.completed > 0
            last_id = tracer.completion_records[-1]["request_id"]
            text = self._read_sse(
                exporter.port,
                until=f'"request_id": {last_id}'.encode())
            payloads = [json.loads(line[len("data: "):])
                        for line in text.splitlines()
                        if line.startswith("data: ")]
            assert len(payloads) == len(tracer.completion_records)
            assert all(p["type"] == "request" for p in payloads)

    def test_stop_unblocks_stream_and_leaks_nothing(self):
        before = set(threading.enumerate())
        exporter = MetricsExporter(_bundle(), request_log=[]).start()
        conn = socket.create_connection(("127.0.0.1", exporter.port),
                                        timeout=5.0)
        conn.sendall(b"GET /requests HTTP/1.0\r\n\r\n")
        conn.settimeout(5.0)
        time.sleep(0.05)       # let the handler enter its poll loop
        exporter.stop()
        data = b""
        while True:
            try:
                chunk = conn.recv(4096)
            except OSError:
                break
            if not chunk:
                break
            data = data + chunk
        conn.close()
        assert b"exporter shutting down" in data
        leaked = [t for t in set(threading.enumerate()) - before
                  if t.is_alive()]
        assert leaked == []

    def test_port_reuse_after_stop(self):
        """Regression: a fresh exporter can rebind the port an earlier
        one just released (no TIME_WAIT bind failure)."""
        first = MetricsExporter(_bundle()).start()
        port = first.port
        _get(first.url + "healthz")
        first.stop()
        second = MetricsExporter(_bundle(), port=port).start()
        try:
            assert second.port == port
            status, _, body = _get(second.url + "healthz")
            assert (status, body) == (200, "ok\n")
        finally:
            second.stop()


class TestFlightRecorderExceptionPath:
    """Satellite: the final snapshot survives a crashing run."""

    _ARGS = ["serve-sim", "--devices", "tx2", "--rate", "10",
             "--duration", "0.2", "--seed", "3", "--models", "alexnet"]

    def test_final_snapshot_written_when_serve_sim_raises(
            self, tmp_path, monkeypatch, capsys):
        import repro.cli as cli
        from repro.serving.scheduler import FleetScheduler

        def boom(self, trace, n_jobs=1):
            raise RuntimeError("mid-flight crash")

        monkeypatch.setattr(FleetScheduler, "run", boom)
        flight_dir = tmp_path / "fr"
        with pytest.raises(RuntimeError, match="mid-flight crash"):
            cli.main(self._ARGS
                     + ["--flight-recorder", str(flight_dir)])
        capsys.readouterr()
        files = sorted(flight_dir.glob("flight-*.json"))
        assert files, "no snapshot despite the crash"
        last = json.loads(files[-1].read_text())
        assert last["final"] is True
        assert last["format"] == "powerlens-flight"

    def test_write_failure_disarm_never_masks_the_crash(self, tmp_path):
        recorder = FlightRecorder(_bundle(), tmp_path / "fr",
                                  interval_s=60.0)
        recorder.start()
        recorder.directory = tmp_path / "gone" / "deeper"
        with pytest.raises(RuntimeError, match="original failure"):
            try:
                raise RuntimeError("original failure")
            finally:
                recorder.stop()   # write fails -> disarms, no raise
        assert recorder.failed is True
