"""Metrics registry tests.

The hypothesis suite pins the merge algebra the worker-shard design
depends on: merge is associative and commutative (counters and histogram
bucket counts exactly, sums to float tolerance, gauges by maximum), and
folding N worker shards together equals the serial run — the metrics
analogue of the dataset generator's ``n_jobs`` byte-identity property.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_METRICS,
    parse_prometheus_text,
)

pytestmark = pytest.mark.obs

#: Small shared name pool so randomly built registries overlap.
_NAMES = ("powerlens_a_total", "powerlens_b_total", "powerlens_c")

_obs_values = st.floats(min_value=0.0, max_value=100.0,
                        allow_nan=False, allow_infinity=False)


@st.composite
def registries(draw):
    """A registry holding random counters/gauges/histograms drawn from a
    fixed name pool (same name -> same kind, so merges are legal)."""
    reg = MetricsRegistry()
    for n in draw(st.lists(st.integers(0, 50), min_size=0, max_size=3)):
        reg.counter(_NAMES[0]).inc(n)
    for v in draw(st.lists(_obs_values, min_size=0, max_size=3)):
        reg.gauge(_NAMES[2] + "_gauge").set(v)
    for v in draw(st.lists(_obs_values, min_size=0, max_size=5)):
        reg.histogram(_NAMES[2] + "_seconds",
                      buckets=(0.5, 5.0, 50.0)).observe(v)
    return reg


def _copy(reg: MetricsRegistry) -> MetricsRegistry:
    return MetricsRegistry.from_dict(reg.to_dict())


def _assert_equivalent(x: MetricsRegistry, y: MetricsRegistry) -> None:
    """Equality up to float tolerance on histogram sums; everything
    integer (counter values, bucket counts) must match exactly."""
    assert x.names() == y.names()
    for name in x.names():
        a, b = x.get(name), y.get(name)
        assert type(a) is type(b)
        if isinstance(a, Counter):
            assert a.value == b.value
        elif isinstance(a, Gauge):
            assert a.value == pytest.approx(b.value)
        elif isinstance(a, Histogram):
            assert a.bounds == b.bounds
            assert a.counts == b.counts
            assert a.sum == pytest.approx(b.sum)


class TestMergeLaws:
    @settings(max_examples=40, deadline=None)
    @given(a=registries(), b=registries())
    def test_merge_commutative(self, a, b):
        ab = _copy(a).merge(b)
        ba = _copy(b).merge(a)
        _assert_equivalent(ab, ba)

    @settings(max_examples=40, deadline=None)
    @given(a=registries(), b=registries(), c=registries())
    def test_merge_associative(self, a, b, c):
        left = _copy(a).merge(b).merge(c)
        right = _copy(a).merge(_copy(b).merge(c))
        _assert_equivalent(left, right)

    @settings(max_examples=25, deadline=None)
    @given(values=st.lists(_obs_values, min_size=0, max_size=40),
           n_shards=st.integers(min_value=1, max_value=6))
    def test_n_shards_equal_serial(self, values, n_shards):
        """Histogram bucket counts from N worker shards merged together
        equal the serial run exactly; sums to float tolerance."""
        buckets = (0.1, 1.0, 10.0)
        serial = MetricsRegistry()
        for v in values:
            serial.histogram("h", buckets=buckets).observe(v)
            serial.counter("n_total").inc()
        shards = [MetricsRegistry() for _ in range(n_shards)]
        for i, v in enumerate(values):
            shard = shards[i % n_shards]
            shard.histogram("h", buckets=buckets).observe(v)
            shard.counter("n_total").inc()
        merged = MetricsRegistry()
        for shard in shards:
            merged.merge(shard)
        if values:
            assert merged.get("h").counts == serial.get("h").counts
            assert merged.get("h").sum == pytest.approx(
                serial.get("h").sum)
            assert merged.get("n_total").value == len(values)
        _assert_equivalent(merged, serial)

    def test_merge_rejects_kind_mismatch_and_bound_mismatch(self):
        a = MetricsRegistry()
        a.counter("m")
        b = MetricsRegistry()
        b.gauge("m")
        with pytest.raises(ValueError, match="kind mismatch"):
            a.merge(b)
        c = MetricsRegistry()
        c.histogram("h", buckets=(1.0, 2.0))
        d = MetricsRegistry()
        d.histogram("h", buckets=(1.0, 3.0))
        with pytest.raises(ValueError, match="bucket bounds"):
            c.merge(d)

    def test_gauge_merges_by_high_water_mark(self):
        a = MetricsRegistry()
        a.gauge("g").set(2.0)
        b = MetricsRegistry()
        b.gauge("g").set(5.0)
        assert _copy(a).merge(b).get("g").value == 5.0
        assert _copy(b).merge(a).get("g").value == 5.0
        # An unset gauge never wins over a set one.
        c = MetricsRegistry()
        c.gauge("g")
        merged = _copy(c).merge(a)
        assert merged.get("g").value == 2.0


class TestRoundTrips:
    @settings(max_examples=30, deadline=None)
    @given(reg=registries())
    def test_json_round_trip_exact(self, reg):
        assert MetricsRegistry.from_json(reg.to_json()).to_dict() == \
            reg.to_dict()

    @settings(max_examples=30, deadline=None)
    @given(reg=registries())
    def test_prometheus_round_trip_exact(self, reg):
        """repr-format floats make the text exposition lossless for our
        own subset (help lines excepted for never-created metrics)."""
        parsed = parse_prometheus_text(reg.to_prometheus_text())
        a, b = parsed.to_dict(), reg.to_dict()
        # A gauge that was never set() round-trips as set: align that
        # one flag, everything else must match exactly.
        for spec in b.values():
            if spec["kind"] == "gauge":
                spec["set"] = True
        assert a == b

    def test_prometheus_text_shape(self):
        reg = MetricsRegistry()
        reg.counter("powerlens_hits_total", help="cache hits").inc(4)
        reg.histogram("powerlens_lat_seconds",
                      buckets=(0.1, 1.0)).observe(0.05)
        text = reg.to_prometheus_text()
        assert "# HELP powerlens_hits_total cache hits" in text
        assert "# TYPE powerlens_hits_total counter" in text
        assert "powerlens_hits_total 4" in text
        assert 'powerlens_lat_seconds_bucket{le="0.1"} 1' in text
        assert 'powerlens_lat_seconds_bucket{le="+Inf"} 1' in text
        assert "powerlens_lat_seconds_count 1" in text

    def test_parse_rejects_unparseable_line(self):
        with pytest.raises(ValueError, match="unparseable"):
            parse_prometheus_text("what is this 3\n")


class TestRegistryBasics:
    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("c").inc(-1)

    def test_histogram_bucket_edges(self):
        h = Histogram("h", buckets=(1.0, 2.0))
        for v in (0.5, 1.0, 1.5, 2.0, 99.0):
            h.observe(v)
        # le semantics: 1.0 lands in the first bucket, 2.0 in the
        # second, 99 in +Inf.
        assert h.counts == [2, 2, 1]
        assert h.cumulative() == [2, 4, 5]
        assert h.count == 5

    def test_histogram_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=())
        with pytest.raises(ValueError):
            Histogram("h", buckets=(2.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("h", buckets=(1.0, 1.0))

    def test_kind_mismatch_on_get_or_create(self):
        reg = MetricsRegistry()
        reg.counter("m")
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("m")

    def test_disabled_registry_hands_out_null_metric(self):
        c = NULL_METRICS.counter("x")
        c.inc(5)
        NULL_METRICS.gauge("g").set(1.0)
        NULL_METRICS.histogram("h").observe(2.0)
        assert c.value == 0
        assert len(NULL_METRICS) == 0
        with pytest.raises(ValueError):
            NULL_METRICS.merge(MetricsRegistry())


class TestNearestRankSharing:
    """One nearest-rank definition serves both the exact SLO-report
    percentiles and the bucketed histogram estimate (satellite:
    percentile-logic dedupe)."""

    def test_index_matches_textbook_nearest_rank(self):
        from repro.obs.metrics import nearest_rank_index
        # rank = ceil(q * n), 1-based; the helper is the 0-based index.
        assert nearest_rank_index(100, 0.5) == 49
        assert nearest_rank_index(100, 0.9) == 89
        assert nearest_rank_index(100, 0.99) == 98
        assert nearest_rank_index(100, 1.0) == 99
        assert nearest_rank_index(1, 0.0) == 0
        assert nearest_rank_index(5, 0.0001) == 0

    def test_index_validation(self):
        from repro.obs.metrics import nearest_rank_index
        with pytest.raises(ValueError):
            nearest_rank_index(10, 1.5)
        with pytest.raises(ValueError):
            nearest_rank_index(10, -0.1)
        with pytest.raises(ValueError):
            nearest_rank_index(0, 0.5)

    @settings(max_examples=50, deadline=None)
    @given(values=st.lists(
        st.floats(min_value=0.0, max_value=1e6,
                  allow_nan=False, allow_infinity=False),
        min_size=1, max_size=200),
        q=st.floats(min_value=0.01, max_value=1.0))
    def test_slo_report_rank_is_a_real_observation(self, values, q):
        from repro.serving.slo_report import nearest_rank
        result = nearest_rank(values, q)
        assert result in values
        # At least ceil(q*n) observations are <= the reported rank.
        import math as _math
        ordered = sorted(values)
        rank = max(1, _math.ceil(q * len(values)))
        assert sum(v <= result for v in values) >= rank
        assert result == ordered[rank - 1]

    @settings(max_examples=30, deadline=None)
    @given(values=st.lists(st.sampled_from([1.0, 2.0, 3.0, 4.0]),
                           min_size=1, max_size=100),
           q=st.floats(min_value=0.01, max_value=1.0))
    def test_histogram_picks_the_exact_ranks_bucket(self, values, q):
        """Both sides share one rank convention, so when every
        observation sits exactly on a bucket upper bound the bucketed
        estimate lands inside the bucket whose upper bound *is* the
        exact nearest-rank percentile."""
        from repro.serving.slo_report import nearest_rank
        bounds = (1.0, 2.0, 3.0, 4.0)
        hist = Histogram("h", buckets=bounds)
        for v in values:
            hist.observe(v)
        exact = nearest_rank(values, q)
        estimate = hist.quantile(q)
        lower = {1.0: 0.0, 2.0: 1.0, 3.0: 2.0, 4.0: 3.0}[exact]
        assert lower < estimate <= exact

    @pytest.mark.parametrize("q", [0.01, 0.25, 0.5, 0.75, 0.9, 1.0])
    def test_histogram_exact_when_one_observation_per_bucket(self, q):
        """With exactly one observation per bucket the in-bucket
        interpolation is trivial and the two implementations agree to
        the digit."""
        from repro.serving.slo_report import nearest_rank
        values = [1.0, 2.0, 3.0, 4.0]
        hist = Histogram("h", buckets=(1.0, 2.0, 3.0, 4.0))
        for v in values:
            hist.observe(v)
        assert hist.quantile(q) == pytest.approx(
            nearest_rank(values, q))
