"""Activation-sparsity axis of the analytic cost path.

The contract under test (see ``repro.hw.perf.sparse_works`` and the
``sparsity`` parameter threaded through ``repro.hw.analytic``):

* **zero is identity** — ``sparsity=0.0`` returns the *same* works
  object and hits the same profile-table cache entries, so every
  pre-sparsity number in the repo is reproduced bit-for-bit;
* **loop/table bit-identity** — the vectorized profile table and the
  reference per-op loop agree exactly at any sparsity, because both
  consume the same transformed works (the existing identity contract
  extends to the new axis for free);
* **monotone relief** — sparsity strictly reduces compute-category
  flops and memory traffic, so analytic energy and time never increase
  with sparsity;
* **category discipline** — only conv/dwconv/linear/attention ops are
  rescaled; io, norm, pooling and elementwise work is untouched;
* **simulator plumbing** — ``InferenceJob.sparsity`` validates its
  range and the static fast path keys its row cache per sparsity.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.experiments.adaptive import build_drift_net
from repro.hw.analytic import AnalyticEvaluator
from repro.hw.perf import (
    SPARSITY_COMPUTE_CATEGORIES,
    SPARSITY_MEM_FRACTION,
    sparse_works,
)
from repro.hw.platform import get_platform
from repro.hw.simulator import InferenceJob, InferenceSimulator
from repro.governors import PresetGovernor, analytic_plan

pytestmark = pytest.mark.family

PLATFORM = get_platform("tx2")


@pytest.fixture(scope="module")
def graph():
    return build_drift_net()


@pytest.fixture(scope="module")
def evaluator():
    return AnalyticEvaluator(PLATFORM)


class TestSparseWorks:
    def test_zero_sparsity_is_identity_object(self, evaluator, graph):
        works = evaluator.latency.graph_work(graph)
        assert sparse_works(works, 0.0) is works

    @settings(max_examples=30, deadline=None)
    @given(s=st.floats(0.001, 0.999, allow_nan=False))
    def test_only_compute_categories_rescaled(self, s, graph):
        evaluator = AnalyticEvaluator(PLATFORM)
        works = evaluator.latency.graph_work(graph)
        out = sparse_works(works, s)
        assert len(out) == len(works)
        for before, after in zip(works, out):
            assert after.name == before.name
            assert after.category == before.category
            if before.category in SPARSITY_COMPUTE_CATEGORIES:
                assert after.flops == before.flops * (1.0 - s)
                assert after.mem_bytes == before.mem_bytes * (
                    1.0 - SPARSITY_MEM_FRACTION * s)
            else:
                assert after.flops == before.flops
                assert after.mem_bytes == before.mem_bytes

    @pytest.mark.parametrize("bad", [-0.1, 1.0, 1.5])
    def test_out_of_range_rejected(self, bad, evaluator, graph):
        works = evaluator.latency.graph_work(graph)
        with pytest.raises(ValueError, match="sparsity"):
            sparse_works(works, bad)


class TestProfileSparsity:
    @settings(max_examples=8, deadline=None)
    @given(s=st.sampled_from([0.0, 0.2, 0.5, 0.9]),
           batch=st.sampled_from([1, 16]))
    def test_loop_and_table_bit_identical(self, s, batch, graph):
        evaluator = AnalyticEvaluator(PLATFORM)
        table = evaluator.profile_table(graph, batch, s)
        works = evaluator.latency.graph_work(graph)
        loop = evaluator.profile(works, batch_size=batch, sparsity=s)
        fast = table.graph_profile()
        np.testing.assert_array_equal(fast.energies, loop.energies)
        np.testing.assert_array_equal(fast.times, loop.times)

    def test_energy_and_time_monotone_in_sparsity(self, evaluator,
                                                  graph):
        prev = None
        for s in (0.0, 0.25, 0.5, 0.75):
            profile = evaluator.graph_profile(graph, batch_size=16,
                                              sparsity=s)
            point = (profile.energies.sum(), profile.times.sum())
            if prev is not None:
                assert point[0] < prev[0]
                assert point[1] <= prev[1]
            prev = point

    def test_table_cache_keyed_per_sparsity(self, graph):
        evaluator = AnalyticEvaluator(PLATFORM)
        dense = evaluator.profile_table(graph, 16, 0.0)
        sparse = evaluator.profile_table(graph, 16, 0.5)
        assert dense is not sparse
        assert evaluator.profile_table(graph, 16, 0.0) is dense
        assert evaluator.profile_table(graph, 16, 0.5) is sparse

    def test_sparse_plan_can_differ_from_dense(self, evaluator, graph):
        dense = analytic_plan(evaluator, graph, 16, block_size=4)
        sparse = analytic_plan(evaluator, graph, 16, block_size=4,
                               sparsity=0.9)
        assert dense.graph_name == sparse.graph_name
        assert len(dense.steps) == len(sparse.steps)
        # Same structure; levels may move (they do on the drift net —
        # that movement is the whole point of the sparsity axis).
        assert [s.op_index for s in dense.steps] \
            == [s.op_index for s in sparse.steps]


class TestSimulatorSparsity:
    @pytest.mark.parametrize("bad", [-0.01, 1.0])
    def test_job_sparsity_validated(self, bad, graph):
        with pytest.raises(ValueError, match="sparsity"):
            InferenceJob(graph=graph, batch_size=1, sparsity=bad)

    def test_sparse_job_uses_less_energy(self, evaluator, graph):
        plan = analytic_plan(evaluator, graph, 16, block_size=4)

        def run(s):
            gov = PresetGovernor([plan], resilient=True)
            job = InferenceJob(graph=graph, batch_size=16, n_batches=1,
                               sparsity=s)
            sim = InferenceSimulator(PLATFORM, seed=3, keep_trace=True,
                                     keep_samples=False)
            return sim.run([job], gov).trace.total_energy

        assert run(0.6) < run(0.0)

    def test_row_cache_isolated_per_sparsity(self, evaluator, graph):
        plan = analytic_plan(evaluator, graph, 16, block_size=4)
        cache: dict = {}

        def run(s):
            gov = PresetGovernor([plan], resilient=True)
            job = InferenceJob(graph=graph, batch_size=16, n_batches=1,
                               sparsity=s)
            sim = InferenceSimulator(PLATFORM, seed=3, keep_trace=True,
                                     keep_samples=False,
                                     op_row_cache=cache)
            return sim.run([job], gov).trace.total_energy

        dense_a = run(0.0)
        sparse_a = run(0.5)
        # Re-running against the warm shared cache reproduces both
        # exactly: the sparse keys never collide with the dense ones.
        assert run(0.0) == dense_a
        assert run(0.5) == sparse_a
        assert sparse_a < dense_a
