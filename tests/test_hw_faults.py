"""Unit tests for the deterministic fault-injection layer
(:mod:`repro.hw.faults`): profile validation/parsing/scaling, injector
determinism, per-category outcomes and the pure worker-fault function."""

import random
from dataclasses import replace

import pytest

from repro.hw.faults import (
    OUTCOME_APPLIED,
    OUTCOME_DELAYED,
    OUTCOME_DROPPED,
    OUTCOME_PARTIAL,
    CapWindow,
    FaultInjector,
    FaultProfile,
    TransientWorkerError,
    worker_fault,
)
from repro.hw.telemetry import TelemetrySample

pytestmark = pytest.mark.faults


def _sample(t=1.0, power=5.0, util=0.5):
    return TelemetrySample(t=t, period=0.1, gpu_level=3, gpu_busy=util,
                           compute_util=util, memory_util=util,
                           gpu_power=power, cpu_power=power / 2,
                           total_power=power * 2)


class TestCapWindow:
    def test_validation(self):
        with pytest.raises(ValueError):
            CapWindow(1.0, 1.0, 3)
        with pytest.raises(ValueError):
            CapWindow(2.0, 1.0, 3)
        with pytest.raises(ValueError):
            CapWindow(-0.5, 1.0, 3)
        with pytest.raises(ValueError):
            CapWindow(0.0, 1.0, -1)

    def test_active_at_half_open(self):
        w = CapWindow(1.0, 2.0, 3)
        assert not w.active_at(0.999)
        assert w.active_at(1.0)
        assert w.active_at(1.999)
        assert not w.active_at(2.0)


class TestFaultProfile:
    def test_rate_validation(self):
        with pytest.raises(ValueError):
            FaultProfile(switch_drop_rate=1.5)
        with pytest.raises(ValueError):
            FaultProfile(telemetry_drop_rate=-0.1)
        with pytest.raises(ValueError):
            FaultProfile(switch_delay_s=-1.0)
        with pytest.raises(ValueError):
            FaultProfile(telemetry_noise_std=-0.2)

    def test_is_zero(self):
        assert FaultProfile.none().is_zero
        assert FaultProfile(seed=99, switch_delay_s=9.0).is_zero
        assert not FaultProfile(switch_drop_rate=0.01).is_zero
        assert not FaultProfile(telemetry_noise_std=0.1).is_zero
        assert not FaultProfile(
            cap_windows=(CapWindow(0.0, 1.0, 2),)).is_zero

    def test_representative(self):
        p = FaultProfile.representative(seed=3)
        assert p.seed == 3
        assert p.switch_drop_rate == pytest.approx(0.05)
        assert p.telemetry_drop_rate == pytest.approx(0.02)
        assert len(p.cap_windows) == 1
        # The thermal window clamps to the ladder floor.
        assert p.cap_windows[0].max_level == 0

    def test_representative_sized_to_horizon(self):
        p = FaultProfile.representative(horizon=200.0)
        (w,) = p.cap_windows
        assert w.t_start == pytest.approx(4.0)
        assert w.t_end == pytest.approx(20.0)

    def test_scaled_zero_is_zero(self):
        assert FaultProfile.representative().scaled(0.0).is_zero

    def test_scaled_rates_and_window_duration(self):
        p = FaultProfile(switch_drop_rate=0.3, telemetry_noise_std=0.1,
                         cap_windows=(CapWindow(1.0, 2.0, 4),))
        doubled = p.scaled(2.0)
        assert doubled.switch_drop_rate == pytest.approx(0.6)
        assert doubled.telemetry_noise_std == pytest.approx(0.2)
        assert doubled.cap_windows[0].t_start == pytest.approx(1.0)
        assert doubled.cap_windows[0].t_end == pytest.approx(3.0)
        # Rates clamp at 1.
        assert p.scaled(10.0).switch_drop_rate == 1.0
        # Identity scaling changes nothing.
        assert p.scaled(1.0) == p
        with pytest.raises(ValueError):
            p.scaled(-1.0)

    def test_parse_presets_and_spec(self):
        assert FaultProfile.parse("none").is_zero
        assert FaultProfile.parse("").is_zero
        assert FaultProfile.parse("representative") == \
            FaultProfile.representative()
        p = FaultProfile.parse(
            "seed=7,switch_drop_rate=0.1,cap=0.5:1.5:2,cap=2:3:4")
        assert p.seed == 7
        assert p.switch_drop_rate == pytest.approx(0.1)
        assert p.cap_windows == (CapWindow(0.5, 1.5, 2),
                                 CapWindow(2.0, 3.0, 4))

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            FaultProfile.parse("drop0.1")
        with pytest.raises(ValueError):
            FaultProfile.parse("no_such_field=1")
        with pytest.raises(ValueError):
            FaultProfile.parse("cap=1:2")

    def test_to_dict_json_friendly(self):
        p = FaultProfile.representative(seed=5)
        d = p.to_dict()
        assert d["seed"] == 5
        assert d["cap_windows"] == [
            [w.t_start, w.t_end, w.max_level] for w in p.cap_windows]


class TestFaultInjector:
    def test_maybe_none_for_zero(self):
        assert FaultInjector.maybe(None) is None
        assert FaultInjector.maybe(FaultProfile.none()) is None
        assert FaultInjector.maybe(
            FaultProfile(switch_drop_rate=0.5)) is not None

    def test_deterministic_streams(self):
        profile = FaultProfile(seed=11, switch_drop_rate=0.5,
                               telemetry_drop_rate=0.5)
        a, b = FaultInjector(profile), FaultInjector(profile)
        for _ in range(50):
            assert a.switch_outcome(0, 3) == b.switch_outcome(0, 3)
        # Telemetry draws never perturb the switch stream: an injector
        # that also consumed telemetry events still agrees on switches
        # with one that saw none.
        c, d = FaultInjector(profile), FaultInjector(profile)
        for i in range(50):
            c.deliver_sample(_sample(t=i * 0.1))
            assert c.switch_outcome(0, 3) == d.switch_outcome(0, 3)

    def test_drop_certain(self):
        inj = FaultInjector(FaultProfile(switch_drop_rate=1.0))
        achieved, outcome, stall = inj.switch_outcome(2, 5)
        assert (achieved, outcome, stall) == (2, OUTCOME_DROPPED, 0.0)
        assert inj.stats.switches_dropped == 1

    def test_partial_lands_one_short(self):
        inj = FaultInjector(FaultProfile(switch_partial_rate=1.0))
        assert inj.switch_outcome(2, 5) == (4, OUTCOME_PARTIAL, 0.0)
        assert inj.switch_outcome(5, 2) == (3, OUTCOME_PARTIAL, 0.0)
        # An adjacent-step partial degenerates to a drop.
        assert inj.switch_outcome(2, 3) == (2, OUTCOME_DROPPED, 0.0)

    def test_delay_charges_extra_stall(self):
        inj = FaultInjector(FaultProfile(switch_delay_rate=1.0,
                                         switch_delay_s=0.123))
        assert inj.switch_outcome(2, 5) == (5, OUTCOME_DELAYED, 0.123)
        assert inj.stats.switches_delayed == 1

    def test_clean_profile_applies(self):
        inj = FaultInjector(FaultProfile(telemetry_drop_rate=0.5))
        assert inj.switch_outcome(2, 5) == (5, OUTCOME_APPLIED, 0.0)

    def test_active_cap_is_tightest(self):
        inj = FaultInjector(FaultProfile(
            switch_drop_rate=0.1,
            cap_windows=(CapWindow(0.0, 2.0, 5), CapWindow(1.0, 3.0, 2))))
        assert inj.active_cap(0.5) == 5
        assert inj.active_cap(1.5) == 2
        assert inj.active_cap(2.5) == 2
        assert inj.active_cap(3.5) is None

    def test_telemetry_drop(self):
        inj = FaultInjector(FaultProfile(telemetry_drop_rate=1.0))
        assert inj.deliver_sample(_sample()) is None
        assert inj.stats.telemetry_dropped == 1

    def test_telemetry_stuck_repeats_previous_window(self):
        inj = FaultInjector(FaultProfile(telemetry_stuck_rate=1.0))
        first = _sample(t=1.0, power=5.0)
        # Nothing to repeat yet: the first window passes through clean.
        assert inj.deliver_sample(first) == first
        second = inj.deliver_sample(_sample(t=2.0, power=9.0))
        assert second.faulty
        assert second.t == 2.0
        assert second.gpu_power == pytest.approx(first.gpu_power)
        assert inj.stats.telemetry_stuck == 1

    def test_telemetry_noise_flags_and_clamps(self):
        inj = FaultInjector(FaultProfile(seed=1, telemetry_noise_std=5.0))
        out = inj.deliver_sample(_sample(util=0.9))
        assert out.faulty
        assert 0.0 <= out.gpu_busy <= 1.0
        assert 0.0 <= out.compute_util <= 1.0
        assert out.gpu_power >= 0.0
        assert inj.stats.telemetry_noisy == 1

    def test_stats_total(self):
        inj = FaultInjector(FaultProfile(switch_drop_rate=1.0,
                                         telemetry_drop_rate=1.0))
        inj.switch_outcome(0, 1)
        inj.deliver_sample(_sample())
        inj.note_capped()
        assert inj.stats.total == 3


class TestWorkerFault:
    def test_no_profile_never_fails(self):
        assert not worker_fault(None, 0, 0)
        assert not worker_fault(FaultProfile.none(), 0, 0)

    def test_certain_failure(self):
        p = FaultProfile(worker_failure_rate=1.0)
        assert all(worker_fault(p, i, a)
                   for i in range(5) for a in range(3))

    def test_pure_function_of_identity(self):
        p = FaultProfile(seed=4, worker_failure_rate=0.5)
        draws = [worker_fault(p, i, a)
                 for i in range(20) for a in range(3)]
        again = [worker_fault(p, i, a)
                 for i in range(20) for a in range(3)]
        assert draws == again
        assert any(draws) and not all(draws)
        # Distinct identities draw independently.
        assert worker_fault(p, 0, 0) == worker_fault(p, 0, 0)

    def test_transient_error_is_runtime_error(self):
        assert issubclass(TransientWorkerError, RuntimeError)
