"""Model weight and PowerLens deployment persistence tests."""

import numpy as np
import pytest

from repro.core.persistence import load_powerlens, save_powerlens
from repro.nn import Sequential, StandardScaler, TwoBranchMLP
from repro.nn.serialize import (
    load_params,
    save_params,
    scaler_from_dict,
    scaler_to_dict,
)


class TestWeightSerialization:
    def test_sequential_roundtrip(self, tmp_path):
        m = Sequential.mlp([4, 8, 3], seed=0)
        save_params(m, tmp_path / "m.npz", meta={"kind": "test"})
        m2 = Sequential.mlp([4, 8, 3], seed=99)  # different init
        meta = load_params(m2, tmp_path / "m.npz")
        assert meta == {"kind": "test"}
        x = np.random.default_rng(0).normal(size=(5, 4))
        assert np.allclose(m.predict(x), m2.predict(x))

    def test_two_branch_roundtrip(self, tmp_path):
        m = TwoBranchMLP(4, 3, 2, seed=1)
        save_params(m, tmp_path / "tb.npz")
        m2 = TwoBranchMLP(4, 3, 2, seed=7)
        load_params(m2, tmp_path / "tb.npz")
        rng = np.random.default_rng(1)
        xs, xt = rng.normal(size=(3, 4)), rng.normal(size=(3, 3))
        assert np.allclose(m.predict(xs, xt), m2.predict(xs, xt))

    def test_shape_mismatch_rejected(self, tmp_path):
        save_params(Sequential.mlp([4, 8, 3]), tmp_path / "m.npz")
        wrong = Sequential.mlp([4, 9, 3])
        with pytest.raises(ValueError, match="shape mismatch"):
            load_params(wrong, tmp_path / "m.npz")

    def test_param_count_mismatch_rejected(self, tmp_path):
        save_params(Sequential.mlp([4, 3]), tmp_path / "m.npz")
        deeper = Sequential.mlp([4, 3, 3])
        with pytest.raises(ValueError):
            load_params(deeper, tmp_path / "m.npz")

    def test_scaler_roundtrip(self):
        s = StandardScaler().fit(
            np.random.default_rng(0).normal(2.0, 3.0, size=(50, 4)))
        s2 = scaler_from_dict(scaler_to_dict(s))
        x = np.random.default_rng(1).normal(size=(5, 4))
        assert np.allclose(s.transform(x), s2.transform(x))

    def test_unfitted_scaler_rejected(self):
        with pytest.raises(ValueError):
            scaler_to_dict(StandardScaler())


class TestDeploymentPersistence:
    def test_unfitted_lens_rejected(self, tx2, tmp_path):
        from repro.core import PowerLens
        with pytest.raises(ValueError):
            save_powerlens(PowerLens(tx2), tmp_path)

    def test_full_roundtrip_same_plans(self, fitted_lens, tx2, tmp_path,
                                       small_cnn):
        """A reloaded deployment must produce byte-identical plans."""
        save_powerlens(fitted_lens, tmp_path / "deploy")
        reloaded = load_powerlens(tmp_path / "deploy", tx2)
        original = fitted_lens.analyze(small_cnn)
        restored = reloaded.analyze(small_cnn)
        assert restored.levels == original.levels
        assert [b.op_indices for b in restored.view.blocks] == \
            [b.op_indices for b in original.view.blocks]

    def test_level_count_guard(self, fitted_lens, tmp_path):
        from repro.hw import jetson_agx_xavier
        save_powerlens(fitted_lens, tmp_path / "deploy")
        with pytest.raises(ValueError, match="levels"):
            load_powerlens(tmp_path / "deploy", jetson_agx_xavier())

    def test_manifest_written(self, fitted_lens, tmp_path):
        manifest = save_powerlens(fitted_lens, tmp_path / "d2")
        assert manifest.exists()
        import json
        payload = json.loads(manifest.read_text())
        assert payload["platform"] == "jetson_tx2"
        assert len(payload["schemes"]) == len(fitted_lens.schemes)
