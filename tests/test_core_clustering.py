"""Algorithm 1 tests: distances, DBSCAN and post-processing, with
property-based invariants on the block partition."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.clustering import (
    NOISE,
    cluster_power_blocks,
    dbscan_precomputed,
    mahalanobis_matrix,
    power_distance_matrix,
    process_clusters,
    smooth_features,
    spacing_matrix,
)


class TestMahalanobis:
    def test_symmetric_zero_diagonal(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(12, 5))
        d = mahalanobis_matrix(x)
        assert np.allclose(d, d.T)
        assert np.allclose(np.diag(d), 0.0)
        assert np.all(d >= 0)

    def test_median_normalization(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(20, 4))
        d = mahalanobis_matrix(x)
        off = d[~np.eye(20, dtype=bool)]
        assert np.median(off) == pytest.approx(1.0)

    def test_identical_rows_distance_zero(self):
        x = np.vstack([np.ones(4), np.ones(4), np.zeros(4)])
        d = mahalanobis_matrix(x)
        assert d[0, 1] == pytest.approx(0.0)
        assert d[0, 2] > 0

    def test_handles_collinear_features(self):
        """Pseudo-inverse must cope with duplicate / constant columns."""
        rng = np.random.default_rng(2)
        base = rng.normal(size=(10, 2))
        x = np.hstack([base, base[:, :1], np.ones((10, 1))])
        d = mahalanobis_matrix(x)
        assert np.all(np.isfinite(d))

    def test_degenerate_sizes(self):
        assert mahalanobis_matrix(np.zeros((0, 3))).shape == (0, 0)
        assert mahalanobis_matrix(np.zeros((1, 3))).shape == (1, 1)

    def test_scale_invariance(self):
        """Mahalanobis whitening makes the distance insensitive to
        per-feature scaling — the reason the paper chose it."""
        rng = np.random.default_rng(3)
        x = rng.normal(size=(15, 4))
        scaled = x * np.array([1.0, 100.0, 0.01, 5.0])
        assert np.allclose(mahalanobis_matrix(x),
                           mahalanobis_matrix(scaled), atol=1e-6)


class TestSpacing:
    def test_penalty_grows_with_gap(self):
        r = spacing_matrix(10, lam=0.2, mode="penalty")
        assert r[0, 1] < r[0, 5] < r[0, 9]
        assert r[0, 0] == 0.0

    def test_paper_mode_decays(self):
        r = spacing_matrix(10, lam=0.2, mode="paper")
        assert r[0, 1] > r[0, 5] > r[0, 9]
        assert r[0, 0] == 1.0

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            spacing_matrix(5, lam=-1)
        with pytest.raises(ValueError):
            spacing_matrix(5, lam=0.1, mode="bogus")

    def test_blend_bounds(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(10, 4))
        with pytest.raises(ValueError):
            power_distance_matrix(x, alpha=1.5)
        d = power_distance_matrix(x, alpha=0.5, lam=0.1)
        assert np.allclose(np.diag(d), 0.0)
        assert np.all(d >= 0)


class TestDBSCAN:
    def test_two_well_separated_clusters(self):
        # points 0-4 mutually close, 5-9 mutually close, groups far apart
        d = np.full((10, 10), 10.0)
        np.fill_diagonal(d, 0.0)
        d[:5, :5] = 0.1
        d[5:, 5:] = 0.1
        np.fill_diagonal(d, 0.0)
        labels = dbscan_precomputed(d, eps=0.5, min_pts=3)
        assert len(set(labels[:5])) == 1
        assert len(set(labels[5:])) == 1
        assert labels[0] != labels[5]
        assert NOISE not in labels

    def test_sparse_points_are_noise(self):
        d = np.full((5, 5), 10.0)
        np.fill_diagonal(d, 0.0)
        labels = dbscan_precomputed(d, eps=0.5, min_pts=2)
        assert all(lab == NOISE for lab in labels)

    def test_border_points_adopt_cluster(self):
        # 0,1,2 dense core; 3 within eps of 2 only (border).
        d = np.array([
            [0.0, 0.1, 0.1, 9.0],
            [0.1, 0.0, 0.1, 9.0],
            [0.1, 0.1, 0.0, 0.4],
            [9.0, 9.0, 0.4, 0.0],
        ])
        labels = dbscan_precomputed(d, eps=0.5, min_pts=3)
        assert labels[3] == labels[0]

    def test_input_validation(self):
        with pytest.raises(ValueError):
            dbscan_precomputed(np.zeros((2, 3)), 0.1, 2)
        with pytest.raises(ValueError):
            dbscan_precomputed(np.zeros((3, 3)), -0.1, 2)
        with pytest.raises(ValueError):
            dbscan_precomputed(np.zeros((3, 3)), 0.1, 0)

    def test_min_pts_one_no_noise(self):
        d = np.full((4, 4), 10.0)
        np.fill_diagonal(d, 0.0)
        labels = dbscan_precomputed(d, eps=0.5, min_pts=1)
        assert NOISE not in labels
        assert len(set(labels)) == 4


def _assert_partition(blocks, n):
    covered = [i for b in blocks for i in b]
    assert covered == list(range(n))
    for b in blocks:
        assert list(b) == list(range(b[0], b[-1] + 1))


class TestPostProcess:
    def test_contiguous_labels_pass_through(self):
        blocks = process_clusters([0, 0, 0, 1, 1, 1], mode_window=0)
        _assert_partition(blocks, 6)
        assert len(blocks) == 2

    def test_interleaved_labels_recovered_by_mode_filter(self):
        # Two stages of interleaved kinds: region A = labels {0,1},
        # region B = labels {2,3}.
        labels = [0, 1, 0, 1, 0, 1, 2, 3, 2, 3, 2, 3]
        blocks = process_clusters(labels, min_block_size=3)
        _assert_partition(blocks, 12)
        assert len(blocks) == 2
        assert blocks[0][-1] in (5, 6)

    def test_noise_absorbed(self):
        blocks = process_clusters([0, 0, -1, 1, 1], mode_window=0)
        _assert_partition(blocks, 5)

    def test_all_noise_single_block(self):
        blocks = process_clusters([-1, -1, -1, -1], mode_window=0)
        _assert_partition(blocks, 4)
        assert len(blocks) == 1

    def test_small_runs_merged(self):
        blocks = process_clusters([0, 0, 0, 1, 0, 0, 0],
                                  min_block_size=2, mode_window=0)
        _assert_partition(blocks, 7)
        for b in blocks[:-1]:
            assert len(b) >= 2

    def test_empty(self):
        assert process_clusters([]) == []

    @settings(max_examples=60, deadline=None)
    @given(labels=st.lists(st.integers(-1, 4), min_size=1, max_size=60),
           min_size=st.integers(1, 5),
           window=st.integers(0, 4))
    def test_partition_invariants(self, labels, min_size, window):
        """Property: output is always an ordered, contiguous, complete,
        non-overlapping partition, whatever the input labels."""
        blocks = process_clusters(labels, min_block_size=min_size,
                                  mode_window=window)
        _assert_partition(blocks, len(labels))


class TestEndToEnd:
    def test_smooth_features_window_zero_identity(self):
        x = np.arange(12.0).reshape(4, 3)
        assert np.array_equal(smooth_features(x, 0), x)

    def test_smooth_features_averages(self):
        x = np.array([[0.0], [3.0], [6.0]])
        s = smooth_features(x, 1)
        assert s[1, 0] == pytest.approx(3.0)
        assert s[0, 0] == pytest.approx(1.5)

    def test_cluster_power_blocks_partition(self, small_cnn):
        from repro.core.features import DepthwiseFeatureExtractor
        x = DepthwiseFeatureExtractor().extract_scaled(small_cnn)
        for eps in (0.3, 0.6):
            for mp in (2, 4):
                blocks = cluster_power_blocks(x, eps, mp)
                _assert_partition(blocks, x.shape[0])

    def test_single_op(self):
        assert cluster_power_blocks(np.ones((1, 4)), 0.5, 2) == [[0]]

    def test_empty(self):
        assert cluster_power_blocks(np.zeros((0, 4)), 0.5, 2) == []

    def test_heterogeneous_stages_split(self):
        """A network whose depthwise features change sharply mid-sequence
        should split into (at least) two blocks at a suitable scheme."""
        rng = np.random.default_rng(0)
        a = rng.normal(0.0, 0.05, size=(20, 6))
        b = rng.normal(4.0, 0.05, size=(20, 6))
        x = np.vstack([a, b])
        blocks = cluster_power_blocks(x, eps=0.5, min_pts=3,
                                      smooth_window=0)
        assert len(blocks) == 2
        assert blocks[0][-1] == 19
