"""Telemetry anomaly detection: zero false positives on clean runs of
every governor family, reliable detection of injected noise / switch
delay faults, and the observe-only guarantee (attaching a detector
never changes the simulated run)."""

import math

import pytest

from repro.analysis import ReversalTracker
from repro.governors import FrequencyPlan, OndemandGovernor, PlanStep, \
    PresetGovernor, StaticGovernor, fpg_g
from repro.hw import FaultProfile, InferenceJob, InferenceSimulator, \
    TelemetrySample, jetson_tx2
from repro.obs import Observability
from repro.obs.anomaly import (
    AnomalyConfig,
    AnomalyDetector,
    METRIC_ANOMALIES,
    _RegimeStats,
    _max_platform_power,
)

from tests.conftest import build_small_cnn

pytestmark = pytest.mark.obs


def _sample(t=1.0, power=5.0, level=4, busy=1.0, **over):
    kw = dict(t=t, period=0.02, gpu_level=level, gpu_busy=busy,
              compute_util=busy, memory_util=0.3,
              gpu_power=power * 0.6, cpu_power=power * 0.4,
              total_power=power)
    kw.update(over)
    return TelemetrySample(**kw)


def _cpu_heavy_jobs(graph):
    return [InferenceJob(graph=graph, n_batches=8)]


def _gpu_heavy_jobs(graph):
    return [InferenceJob(graph=graph, batch_size=16, n_batches=40,
                         cpu_work_per_image=2e6)]


def _run(governor, jobs, sample_period=0.02, faults=None, seed=0,
         detector=None):
    sim = InferenceSimulator(jetson_tx2(), sample_period=sample_period,
                             seed=seed, faults=faults, anomaly=detector)
    return sim.run(jobs, governor)


class TestUnits:
    def test_reversal_tracker_counts_direction_flips(self):
        tracker = ReversalTracker(window_s=0.5)
        count = 0
        for i in range(6):
            up = i % 2 == 0
            count = tracker.push(i * 0.01, 4 if up else 8,
                                 8 if up else 4)
        assert count >= 4  # alternating up/down is all reversals
        # Everything ages out of the trailing window.
        assert tracker.push(10.0, 4, 8) <= 1

    def test_regime_stats_track_constant_stream(self):
        stats = _RegimeStats()
        for _ in range(50):
            stats.update(7.5, alpha=0.25)
        assert math.isclose(stats.mean, 7.5)
        assert stats.var < 1e-12

    def test_platform_power_bound_dominates_clean_samples(self):
        platform = jetson_tx2()
        bound = _max_platform_power(platform)
        sim = InferenceSimulator(platform)
        result = sim.run(_cpu_heavy_jobs(build_small_cnn()),
                         OndemandGovernor())
        assert result.samples
        assert max(s.total_power for s in result.samples) <= bound

    def test_bound_breach_fires_without_warmup(self):
        detector = AnomalyDetector()
        detector.reset(jetson_tx2())
        detector.on_sample(_sample(power=1e6))
        assert [a.kind for a in detector.anomalies] == ["power_spike"]

    def test_invalid_sample_flagged(self):
        detector = AnomalyDetector()
        detector.reset(jetson_tx2())
        detector.on_sample(_sample(power=float("nan")))
        detector.on_sample(_sample(t=2.0, gpu_busy=3.0))
        assert [a.kind for a in detector.anomalies] == \
            ["telemetry_invalid"] * 2

    def test_regime_zscore_spike_after_warmup(self):
        cfg = AnomalyConfig(warmup_samples=4, cooldown_s=0.0)
        detector = AnomalyDetector(cfg)
        detector.reset(jetson_tx2())
        for i in range(10):
            detector.on_sample(_sample(t=i * 0.02, power=5.0))
        detector.on_sample(_sample(t=0.5, power=20.0))
        kinds = [a.kind for a in detector.anomalies]
        assert kinds == ["power_spike"]
        # The outlier must not poison the regime estimate.
        key = (True, 4)
        assert math.isclose(detector._regimes[key].mean, 5.0)

    def test_cooldown_suppresses_floods(self):
        cfg = AnomalyConfig(cooldown_s=1.0)
        detector = AnomalyDetector(cfg)
        detector.reset(jetson_tx2())
        for i in range(5):
            detector.on_sample(_sample(t=0.01 * i, power=1e6))
        assert len(detector.anomalies) == 1
        detector.on_sample(_sample(t=5.0, power=1e6))
        assert len(detector.anomalies) == 2

    def test_max_records_bounds_memory(self):
        cfg = AnomalyConfig(cooldown_s=0.0, max_records=3)
        detector = AnomalyDetector(cfg, obs=Observability.enabled_bundle())
        detector.reset(jetson_tx2())
        for i in range(10):
            detector.on_sample(_sample(t=float(i), power=1e6))
        assert len(detector.anomalies) == 3
        assert detector.dropped == 7
        # Metrics still count every emission, retained or dropped.
        assert detector.obs.metrics.counter(
            METRIC_ANOMALIES).value == 10

    def test_summary_lists_kinds(self):
        detector = AnomalyDetector()
        assert detector.summary() == "no anomalies"
        detector.reset(jetson_tx2())
        detector.on_sample(_sample(power=1e6))
        assert "power_spike=1" in detector.summary()


class TestCleanRunsAreSilent:
    @pytest.mark.parametrize("governor", [
        "ondemand", "static", "fpg_g", "preset"])
    @pytest.mark.parametrize("workload", ["cpu_heavy", "gpu_heavy"])
    def test_zero_false_positives(self, governor, workload):
        graph = build_small_cnn()
        if workload == "cpu_heavy":
            jobs, sample_period = _cpu_heavy_jobs(graph), 0.02
        else:
            jobs, sample_period = _gpu_heavy_jobs(graph), 0.005
        if governor == "ondemand":
            gov = OndemandGovernor()
        elif governor == "static":
            gov = StaticGovernor(level=6)
        elif governor == "fpg_g":
            gov = fpg_g()
        else:
            # Preset plans come from the pipeline, whose near-level
            # fusion exists so high-throughput jobs never actuate every
            # few milliseconds.  Mirror that: multi-level plan at a
            # realistic batch period for the CPU-bound workload, fused
            # single-level plan for the ~6 ms/batch GPU-bound one (a
            # 2-level plan replayed 160x/s IS ping-pong, not a false
            # positive).
            if workload == "cpu_heavy":
                jobs = [InferenceJob(graph=graph, batch_size=32,
                                     n_batches=8)]
                steps = [PlanStep(0, 3), PlanStep(4, 9)]
            else:
                steps = [PlanStep(0, 6)]
            gov = PresetGovernor([FrequencyPlan(
                graph_name="small_cnn", steps=steps)])
        detector = AnomalyDetector()
        _run(gov, jobs, sample_period=sample_period, detector=detector)
        assert detector.anomalies == [], detector.summary()


class TestInjectedFaultsAreCaught:
    def test_telemetry_noise_triggers_spike_and_pingpong(self):
        """Heavy multiplicative sensor noise steers the reactive
        governor into frequency ping-pong and produces physically
        impossible power windows — both must be flagged."""
        graph = build_small_cnn()
        profile = FaultProfile(telemetry_noise_std=1.0, seed=0)
        obs = Observability.enabled_bundle()
        detector = AnomalyDetector(obs=obs)
        _run(OndemandGovernor(), _gpu_heavy_jobs(graph),
             sample_period=0.005, faults=profile, detector=detector)
        counts = detector.counts()
        assert counts.get("power_spike", 0) >= 1, detector.summary()
        assert counts.get("pingpong", 0) >= 1, detector.summary()
        # Counters and tracer records mirror the detections.
        total = len(detector.anomalies) + detector.dropped
        assert obs.metrics.counter(METRIC_ANOMALIES).value == total
        spans = [s for s in obs.tracer.spans if s.name == "anomaly"]
        assert len(spans) == total
        assert {s.attributes["kind"] for s in spans} >= {"power_spike",
                                                         "pingpong"}

    def test_switch_delay_blows_stall_budget(self):
        graph = build_small_cnn()
        profile = FaultProfile(switch_delay_rate=0.9,
                               switch_delay_s=0.05, seed=0)
        detector = AnomalyDetector()
        _run(fpg_g(), _cpu_heavy_jobs(graph), sample_period=0.005,
             faults=profile, detector=detector)
        assert detector.counts().get("stall_budget", 0) >= 1, \
            detector.summary()


class TestObserveOnly:
    @pytest.mark.parametrize("faults", [
        None, FaultProfile(telemetry_noise_std=1.0, seed=0)],
        ids=["clean", "noisy"])
    def test_attached_detector_never_changes_the_run(self, faults):
        graph = build_small_cnn()
        jobs = _gpu_heavy_jobs(graph)
        base = _run(OndemandGovernor(), jobs, sample_period=0.005,
                    faults=faults)
        observed = _run(OndemandGovernor(), jobs, sample_period=0.005,
                        faults=faults, detector=AnomalyDetector())
        assert observed.report == base.report
        assert observed.trace.segments == base.trace.segments
        assert observed.samples == base.samples
        assert observed.switch_count == base.switch_count
