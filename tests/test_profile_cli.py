"""``powerlens profile``: dataset-cache paths from the command line.

The profile command reuses the dataset cache shared with the
table/figure commands.  Covered here (following the ``serve-sim`` CLI
suite's in-process ``cli.main`` idiom):

* **cache miss → hit** — a cold cache generates fresh and stores the
  entry; the immediate re-run reports ``dataset cache`` and prints the
  same stage breakdown;
* **missing cache dir** — a nested, nonexistent ``--cache-dir`` is
  created on demand instead of crashing;
* **corrupt cache dir** — a bit-flipped payload is detected by the
  checksum pass, evicted, and regenerated cleanly (miss, then hit
  again);
* **--no-cache** — opting out never touches the directory.
"""

import pytest

import repro.cli as cli

pytestmark = pytest.mark.family

_ARGS = ["profile", "--platform", "tx2", "--networks", "2"]


def _run(cache_dir, capsys, extra=()):
    args = list(_ARGS) + list(extra)
    if cache_dir is not None:
        args += ["--cache-dir", str(cache_dir)]
    rc = cli.main(args)
    out = capsys.readouterr().out
    assert rc == 0
    assert "labeling stage profile" in out
    return out


def _entry_files(cache_dir):
    return sorted(p.name for p in cache_dir.iterdir()
                  if p.suffix in (".json", ".npz"))


def test_profile_cache_miss_then_hit(tmp_path, capsys):
    cache = tmp_path / "cache"
    cold = _run(cache, capsys)
    assert "fresh generation" in cold
    entries = _entry_files(cache)
    # One entry: manifest + two npz payloads.
    assert len(entries) == 3
    warm = _run(cache, capsys)
    assert "dataset cache" in warm
    assert "fresh generation" not in warm
    # The warm read must not rewrite or grow the entry set.
    assert _entry_files(cache) == entries
    # Stage names are stable across the hit (same stored telemetry).
    assert "distance" in warm and "total" in warm


def test_profile_missing_cache_dir_is_created(tmp_path, capsys):
    cache = tmp_path / "does" / "not" / "exist" / "yet"
    assert not cache.exists()
    out = _run(cache, capsys)
    assert "fresh generation" in out
    assert cache.is_dir()
    assert len(_entry_files(cache)) == 3


def test_profile_corrupt_cache_recovers(tmp_path, capsys):
    cache = tmp_path / "cache"
    _run(cache, capsys)
    payload = next(p for p in cache.iterdir()
                   if p.name.endswith(".a.npz"))
    payload.write_bytes(b"not an npz payload")
    out = _run(cache, capsys)
    # Checksum mismatch => miss; the damaged entry is evicted and the
    # command falls back to fresh generation without raising.
    assert "fresh generation" in out
    assert len(_entry_files(cache)) == 3
    assert "dataset cache" in _run(cache, capsys)


def test_profile_truncated_manifest_recovers(tmp_path, capsys):
    cache = tmp_path / "cache"
    _run(cache, capsys)
    manifest = next(p for p in cache.iterdir()
                    if p.suffix == ".json")
    manifest.write_text(manifest.read_text()[:10])
    out = _run(cache, capsys)
    assert "fresh generation" in out
    assert "dataset cache" in _run(cache, capsys)


def test_profile_no_cache_never_writes(tmp_path, capsys):
    cache = tmp_path / "untouched"
    out = _run(cache, capsys, extra=["--no-cache"])
    assert "fresh generation" in out
    assert not cache.exists()
