"""Shape inference tests, including hypothesis property tests for the
convolution/pooling window arithmetic."""

import pytest
from hypothesis import given, strategies as st

from repro.graph.ops import (
    AttentionAttrs,
    ConcatAttrs,
    ConvAttrs,
    InputAttrs,
    LinearAttrs,
    OpAttrs,
    PoolAttrs,
    ReshapeAttrs,
    TokenAttrs,
    OpType,
)
from repro.graph.shapes import ShapeError, element_count, infer_output_shape


class TestConv:
    def test_basic_conv(self):
        attrs = ConvAttrs(out_channels=64, kernel=(7, 7), stride=(2, 2),
                          padding=(3, 3))
        out = infer_output_shape(OpType.CONV2D, attrs, [(3, 224, 224)])
        assert out == (64, 112, 112)

    def test_same_padding_k3(self):
        attrs = ConvAttrs(out_channels=8, kernel=(3, 3), padding=(1, 1))
        assert infer_output_shape(OpType.CONV2D, attrs,
                                  [(4, 32, 32)]) == (8, 32, 32)

    def test_dilation(self):
        attrs = ConvAttrs(out_channels=8, kernel=(3, 3), dilation=(2, 2))
        # effective kernel 5 -> 32 - 5 + 1 = 28
        assert infer_output_shape(OpType.CONV2D, attrs,
                                  [(4, 32, 32)]) == (8, 28, 28)

    def test_groups_must_divide_in_channels(self):
        attrs = ConvAttrs(out_channels=8, groups=3)
        with pytest.raises(ShapeError):
            infer_output_shape(OpType.CONV2D, attrs, [(4, 8, 8)])

    def test_groups_must_divide_out_channels(self):
        attrs = ConvAttrs(out_channels=9, groups=2)
        with pytest.raises(ShapeError):
            infer_output_shape(OpType.CONV2D, attrs, [(4, 8, 8)])

    def test_window_larger_than_input_raises(self):
        attrs = ConvAttrs(out_channels=8, kernel=(9, 9))
        with pytest.raises(ShapeError):
            infer_output_shape(OpType.CONV2D, attrs, [(4, 4, 4)])

    def test_wrong_rank_raises(self):
        attrs = ConvAttrs(out_channels=8)
        with pytest.raises(ShapeError):
            infer_output_shape(OpType.CONV2D, attrs, [(4, 8)])

    @given(
        size=st.integers(4, 64),
        kernel=st.integers(1, 4),
        stride=st.integers(1, 3),
        padding=st.integers(0, 2),
    )
    def test_conv_output_positive_and_bounded(self, size, kernel, stride,
                                              padding):
        """Property: output spatial dims are positive and never exceed
        the padded input size."""
        attrs = ConvAttrs(out_channels=4, kernel=(kernel, kernel),
                          stride=(stride, stride),
                          padding=(padding, padding))
        out = infer_output_shape(OpType.CONV2D, attrs, [(2, size, size)])
        assert out[0] == 4
        assert 1 <= out[1] <= size + 2 * padding
        # Definition check along one axis.
        assert out[1] == (size + 2 * padding - kernel) // stride + 1


class TestPool:
    def test_maxpool_ceil_mode(self):
        # torchvision googlenet: 112x112, k3 s2 ceil -> 56
        attrs = PoolAttrs(kernel=(3, 3), stride=(2, 2), ceil_mode=True)
        assert infer_output_shape(OpType.MAXPOOL2D, attrs,
                                  [(64, 112, 112)]) == (64, 56, 56)

    def test_maxpool_floor_mode(self):
        attrs = PoolAttrs(kernel=(3, 3), stride=(2, 2))
        assert infer_output_shape(OpType.MAXPOOL2D, attrs,
                                  [(64, 112, 112)]) == (64, 55, 55)

    def test_adaptive_avgpool(self):
        attrs = PoolAttrs(output_size=(7, 7))
        assert infer_output_shape(OpType.ADAPTIVE_AVGPOOL2D, attrs,
                                  [(512, 14, 14)]) == (512, 7, 7)

    @given(size=st.integers(2, 40))
    def test_ceil_mode_never_smaller_than_floor(self, size):
        floor_attrs = PoolAttrs(kernel=(3, 3), stride=(2, 2))
        ceil_attrs = PoolAttrs(kernel=(3, 3), stride=(2, 2),
                               ceil_mode=True)
        if size < 3:
            return
        floor = infer_output_shape(OpType.MAXPOOL2D, floor_attrs,
                                   [(1, size, size)])
        ceil = infer_output_shape(OpType.MAXPOOL2D, ceil_attrs,
                                  [(1, size, size)])
        assert ceil[1] >= floor[1]


class TestLinearAndTokens:
    def test_linear_on_vector(self):
        assert infer_output_shape(OpType.LINEAR, LinearAttrs(100),
                                  [(512,)]) == (100,)

    def test_linear_on_tokens(self):
        assert infer_output_shape(OpType.LINEAR, LinearAttrs(3072),
                                  [(197, 768)]) == (197, 3072)

    def test_tokenize(self):
        assert infer_output_shape(OpType.TOKENIZE, TokenAttrs(),
                                  [(768, 14, 14)]) == (196, 768)

    def test_cls_pos_embed(self):
        assert infer_output_shape(OpType.CLS_POS_EMBED, TokenAttrs(),
                                  [(196, 768)]) == (197, 768)

    def test_select_token(self):
        assert infer_output_shape(OpType.SELECT_TOKEN, TokenAttrs(0),
                                  [(197, 768)]) == (768,)

    def test_attention_shape_preserved(self):
        attrs = AttentionAttrs(embed_dim=768, num_heads=12)
        assert infer_output_shape(OpType.ATTENTION, attrs,
                                  [(197, 768)]) == (197, 768)

    def test_attention_dim_mismatch(self):
        attrs = AttentionAttrs(embed_dim=512, num_heads=8)
        with pytest.raises(ShapeError):
            infer_output_shape(OpType.ATTENTION, attrs, [(197, 768)])

    def test_attention_heads_must_divide(self):
        attrs = AttentionAttrs(embed_dim=768, num_heads=7)
        with pytest.raises(ShapeError):
            infer_output_shape(OpType.ATTENTION, attrs, [(197, 768)])


class TestElementwise:
    def test_add_same_shapes(self):
        assert infer_output_shape(OpType.ADD, OpAttrs(),
                                  [(8, 4, 4), (8, 4, 4)]) == (8, 4, 4)

    def test_add_broadcast(self):
        assert infer_output_shape(OpType.MUL, OpAttrs(),
                                  [(8, 4, 4), (8, 1, 1)]) == (8, 4, 4)

    def test_add_incompatible_raises(self):
        with pytest.raises(ShapeError):
            infer_output_shape(OpType.ADD, OpAttrs(),
                               [(8, 4, 4), (7, 4, 4)])

    def test_concat_channels(self):
        assert infer_output_shape(
            OpType.CONCAT, ConcatAttrs(axis=1),
            [(8, 4, 4), (16, 4, 4), (8, 4, 4)]) == (32, 4, 4)

    def test_concat_spatial_mismatch_raises(self):
        with pytest.raises(ShapeError):
            infer_output_shape(OpType.CONCAT, ConcatAttrs(axis=1),
                               [(8, 4, 4), (8, 5, 4)])

    def test_flatten(self):
        assert infer_output_shape(OpType.FLATTEN, ReshapeAttrs(),
                                  [(8, 4, 4)]) == (128,)


class TestMisc:
    def test_input_shape(self):
        assert infer_output_shape(OpType.INPUT, InputAttrs((3, 224, 224)),
                                  []) == (3, 224, 224)

    def test_compute_without_inputs_raises(self):
        with pytest.raises(ShapeError):
            infer_output_shape(OpType.RELU, OpAttrs(), [])

    def test_identity_ops(self):
        for op in (OpType.RELU, OpType.BATCHNORM2D, OpType.DROPOUT,
                   OpType.SOFTMAX):
            from repro.graph.ops import attrs_class_for
            attrs = attrs_class_for(op)()
            assert infer_output_shape(op, attrs, [(8, 4, 4)]) == (8, 4, 4)

    def test_element_count(self):
        assert element_count((3, 224, 224)) == 150528
        assert element_count(()) == 1
