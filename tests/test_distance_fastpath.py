"""Equivalence suite for the factorized distance stage.

:class:`~repro.core.clustering.FactoredDistance` replaces the dense
``einsum`` blended-distance computation with a Gram-form factorization
plus conservative error bands; the repo's contract is that everything
observable downstream — adjacency, DBSCAN labels, power blocks — is
*byte*-identical to the retained reference chain
(:func:`smoothed_power_distance` + :func:`blocks_from_distance`).

This file is the property-based pin for that contract, including the
band-coverage assertion the class docstring points at: outside the
lazy reference fallback, the true factorization error must sit inside
the calibrated band, because that is the premise under which boundary
decisions are made from the fast values alone.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.clustering import (
    FactoredDistance,
    blocks_from_distance,
    cluster_power_blocks,
    cluster_power_blocks_reference,
    smooth_features,
    smooth_features_reference,
    smoothed_power_distance,
)

_EPS_GRID = (0.0, 0.05, 0.3, 1.0)
_MIN_PTS_GRID = (1, 2, 4)


@st.composite
def feature_matrices(draw):
    """Feature matrices spanning the degenerate-covariance zoo: generic
    dense, rank-deficient (collinear columns), constant columns,
    duplicate rows, single feature, and extreme scales."""
    n = draw(st.integers(min_value=0, max_value=12))
    k = draw(st.integers(min_value=1, max_value=6))
    seed = draw(st.integers(min_value=0, max_value=2**32 - 1))
    kind = draw(st.sampled_from(
        ["generic", "rank_deficient", "constant_col", "duplicate_rows",
         "tiny_scale", "huge_scale"]))
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((n, k))
    if kind == "rank_deficient" and k >= 2:
        x[:, -1] = 2.0 * x[:, 0]
    elif kind == "constant_col":
        x[:, 0] = 3.7
    elif kind == "duplicate_rows" and n >= 2:
        x[1] = x[0]
    elif kind == "tiny_scale":
        x = x * 1e-8
    elif kind == "huge_scale":
        x = x * 1e8
    return x


windows = st.integers(min_value=0, max_value=8)


@settings(max_examples=120, deadline=None)
@given(x=feature_matrices(), window=windows)
def test_adjacency_byte_identical(x, window):
    """``adjacency(eps)`` must equal ``reference <= eps`` exactly, for
    every eps in the grid, including eps=0 (diagonal only unless rows
    coincide)."""
    fd = FactoredDistance(x, window)
    if x.shape[0] == 0:
        for eps in _EPS_GRID:
            assert fd.adjacency(eps).shape == (0, 0)
        return
    ref = smoothed_power_distance(x, window)
    for eps in _EPS_GRID:
        assert np.array_equal(fd.adjacency(eps), ref <= eps), \
            f"adjacency mismatch at eps={eps}"


@settings(max_examples=120, deadline=None)
@given(x=feature_matrices(), window=windows)
def test_blocks_byte_identical(x, window):
    """End-to-end blocks per scheme match ``blocks_from_distance`` on
    the reference matrix, list for list."""
    fd = FactoredDistance(x, window)
    if x.shape[0] == 0:
        for eps in _EPS_GRID:
            for min_pts in _MIN_PTS_GRID:
                assert fd.blocks(eps, min_pts) == []
        return
    ref = smoothed_power_distance(x, window)
    for eps in _EPS_GRID:
        for min_pts in _MIN_PTS_GRID:
            assert fd.blocks(eps, min_pts) == \
                blocks_from_distance(ref, eps, min_pts)


@settings(max_examples=120, deadline=None)
@given(x=feature_matrices(), window=windows)
def test_band_covers_true_error(x, window):
    """The calibrated band must contain the true fast-vs-reference gap
    for every pair whenever the oracle trusts its fast values (the
    non-``_force_exact`` regime) — boundary decisions rest on this."""
    fd = FactoredDistance(x, window)
    if fd.n <= 1 or fd._force_exact:
        return
    ref = smoothed_power_distance(x, window)
    exact = ref[fd._iu, fd._ju]
    gap = np.abs(fd._blended - exact)
    assert np.all(gap <= fd._band), (
        f"band violated: max gap {gap.max():.3e} vs band "
        f"{fd._band[np.argmax(gap - fd._band)]:.3e}")


@settings(max_examples=80, deadline=None)
@given(x=feature_matrices(), window=windows,
       eps=st.sampled_from(_EPS_GRID),
       min_pts=st.sampled_from(_MIN_PTS_GRID),
       alpha=st.sampled_from((0.0, 0.4, 0.6, 1.0)),
       lam=st.sampled_from((0.0, 0.05, 0.3)))
def test_cluster_power_blocks_matches_reference(x, window, eps, min_pts,
                                                alpha, lam):
    """The public fast entry point equals the retained reference across
    the blend/regularizer parameter grid."""
    fast = cluster_power_blocks(x, eps, min_pts, alpha=alpha, lam=lam,
                                smooth_window=window)
    ref = cluster_power_blocks_reference(x, eps, min_pts, alpha=alpha,
                                         lam=lam, smooth_window=window)
    assert fast == ref


@settings(max_examples=100, deadline=None)
@given(x=feature_matrices(), window=windows,
       order=st.sampled_from(("C", "F")))
def test_smooth_features_byte_identical(x, window, order):
    """Vectorized smoothing equals the per-row reference loop, bytes
    for bytes, regardless of memory order (including the k=1 column
    case, which squeezes through a different sliding-window shape)."""
    x = np.asarray(x, order=order)
    fast = smooth_features(x, window)
    ref = smooth_features_reference(x, window)
    assert fast.tobytes() == ref.tobytes()


class TestDegenerateShapes:
    """Pinned tiny-n and single-feature cases (the hypothesis suite
    covers them statistically; these never rotate out)."""

    def test_empty(self):
        fd = FactoredDistance(np.zeros((0, 3)), 2)
        assert fd.blocks(0.3, 2) == []
        assert fd.adjacency(0.3).shape == (0, 0)

    def test_single_row(self):
        fd = FactoredDistance(np.array([[1.0, 2.0]]), 2)
        assert fd.adjacency(0.0).tolist() == [[True]]
        ref = smoothed_power_distance(np.array([[1.0, 2.0]]), 2)
        assert fd.blocks(0.3, 1) == blocks_from_distance(ref, 0.3, 1)

    def test_two_rows(self):
        x = np.array([[1.0, 2.0], [1.5, 2.5]])
        fd = FactoredDistance(x, 2)
        ref = smoothed_power_distance(x, 2)
        for eps in _EPS_GRID:
            assert np.array_equal(fd.adjacency(eps), ref <= eps)
            for min_pts in _MIN_PTS_GRID:
                assert fd.blocks(eps, min_pts) == \
                    blocks_from_distance(ref, eps, min_pts)

    def test_single_feature_column(self):
        x = np.linspace(0.0, 1.0, 7).reshape(-1, 1)
        fd = FactoredDistance(x, 3)
        ref = smoothed_power_distance(x, 3)
        for eps in _EPS_GRID:
            assert np.array_equal(fd.adjacency(eps), ref <= eps)

    def test_identical_rows(self):
        # Zero covariance, zero distances: only the spacing penalty
        # separates pairs, on both paths identically.
        x = np.ones((5, 4))
        fd = FactoredDistance(x, 2)
        ref = smoothed_power_distance(x, 2)
        for eps in _EPS_GRID:
            assert np.array_equal(fd.adjacency(eps), ref <= eps)

    def test_forced_reference_chain_matches(self):
        # The all-or-nothing fallback must route every decision through
        # the lazily evaluated reference chain and still agree with the
        # dense path bit for bit.
        x = np.random.default_rng(7).standard_normal((9, 4))
        fd = FactoredDistance(x, 2)
        fd._force_exact = True
        ref = smoothed_power_distance(x, 2)
        for eps in _EPS_GRID:
            assert np.array_equal(fd.adjacency(eps), ref <= eps)
        assert fd.exact_evaluations > 0

    def test_validation_matches_reference(self):
        with pytest.raises(ValueError):
            FactoredDistance(np.ones((3, 2)), 2, alpha=1.5)
        fd = FactoredDistance(np.ones((3, 2)), 2)
        with pytest.raises(ValueError):
            fd.adjacency(-0.1)
        with pytest.raises(ValueError):
            fd.blocks(0.3, 0)
