"""Golden-regression fixture for the serving SLO report.

A fixed 2-device (TX2 + AGX) Poisson scenario under the ``powerlens``
planner and the ``slo`` policy is pinned byte-for-byte as
``tests/goldens/serving_slo.json`` via the same
:func:`repro.experiments.export.canonical_json` path as the Table-1/2
goldens.  Any change to the arrival generators, queueing policies,
scheduler event loop, analytic planner, governors, simulator, or ledger
that moves a reported number past the canonical 10-significant-digit
rounding lands here as a fixture diff — regenerate deliberately with::

    pytest tests/test_serving_slo_golden.py --update-goldens
"""

from pathlib import Path

import pytest

from repro.experiments.export import canonical_json, to_records
from repro.serving import (
    DeviceConfig,
    Fleet,
    FleetScheduler,
    SchedulerConfig,
    make_trace,
)
from tests.conftest import build_small_cnn

pytestmark = pytest.mark.serving

GOLDEN_DIR = Path(__file__).parent / "goldens"

_SEED = 17
_MODEL = "small_cnn"


def _golden_scenario():
    fleet = Fleet.build([DeviceConfig("tx2-0", "tx2"),
                         DeviceConfig("agx-1", "agx")],
                        governor="powerlens", fleet_seed=_SEED)
    fleet.add_graph(build_small_cnn(_MODEL))
    trace = make_trace("poisson", rate_rps=40.0, duration_s=1.0,
                       models=[_MODEL], seed=_SEED, slo_latency_s=0.75)
    scheduler = FleetScheduler(fleet, SchedulerConfig(policy="slo"))
    return scheduler.run(trace)


def test_serving_slo_golden(update_goldens):
    result = _golden_scenario()
    path = GOLDEN_DIR / "serving_slo.json"
    text = canonical_json(result.report) + "\n"
    if update_goldens:
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(text)
        return
    assert path.exists(), (
        f"golden fixture {path} missing — generate it with "
        f"pytest tests/test_serving_slo_golden.py --update-goldens")
    assert text == path.read_text(), (
        "serving SLO report drifted from its golden fixture; if the "
        "change is intended, rerun with --update-goldens and commit "
        "the diff")


def test_serving_records_shape():
    """The export path: one fleet-scope record, then one per device,
    idempotent canonical form."""
    report = _golden_scenario().report
    records = to_records(report)
    assert records[0]["scope"] == "fleet"
    assert records[0]["conserved"] is True
    device_records = [r for r in records if r["scope"] == "device"]
    assert [r["device"] for r in device_records] == ["tx2-0", "agx-1"]
    assert sum(r["requests"] for r in device_records) == \
        records[0]["completed"]
    once = canonical_json(report)
    assert canonical_json(report) == once
