"""Additional builder / DOT / metrics edge-case coverage."""

import pytest

from repro.graph import GraphBuilder, graph_to_dot, node_metrics
from repro.graph.ops import OpType


class TestBuilderComposites:
    def test_pair_expansion(self):
        b = GraphBuilder("g")
        x = b.input((3, 16, 16))
        y = b.conv(x, 4, kernel=(1, 7), padding=(0, 3))
        assert b.shape(y) == (4, 16, 16)

    def test_all_activation_helpers(self):
        b = GraphBuilder("g")
        x = b.input((3, 8, 8))
        for helper in (b.relu, b.relu6, b.gelu, b.sigmoid, b.hardswish,
                       b.hardsigmoid, b.silu, b.softmax):
            x = helper(x)
        ops = [n.op for n in b.build().compute_nodes()]
        assert OpType.GELU in ops and OpType.SILU in ops

    def test_avgpool_and_dropout(self):
        b = GraphBuilder("g")
        x = b.input((4, 8, 8))
        x = b.avgpool(x, kernel=2, stride=2)
        x = b.dropout(x, p=0.3)
        assert b.shape(x) == (4, 4, 4)

    def test_mul_gate(self):
        b = GraphBuilder("g")
        x = b.input((4, 8, 8))
        g1 = b.adaptive_avgpool(x, 1)
        y = b.mul([x, g1])
        assert b.shape(y) == (4, 8, 8)

    def test_explicit_duplicate_name_rejected(self):
        from repro.graph import GraphError
        b = GraphBuilder("g")
        b.input((4,), name="x")
        with pytest.raises(GraphError):
            b.input((4,), name="x")


class TestMetricsEdgeCases:
    def test_cls_pos_embed_params(self):
        b = GraphBuilder("g")
        x = b.input((8, 4, 4))
        x = b.tokenize(x)
        x = b.cls_pos_embed(x)
        g = b.build()
        node = g.compute_nodes()[-1]
        m = node_metrics(g, node)
        # 17 tokens x 8 dims positional table + 8-dim cls token.
        assert m.params == 17 * 8 + 8

    def test_concat_is_free_compute(self, small_cnn):
        b = GraphBuilder("g")
        x = b.input((4, 8, 8))
        y = b.relu(x)
        z = b.concat([x, y])
        g = b.build()
        m = node_metrics(g, g[z])
        assert m.flops == 0.0
        assert m.mem_elements > 0

    def test_maxpool_flops_scale_with_kernel(self):
        def pool_metrics(k):
            b = GraphBuilder("g")
            x = b.input((4, 16, 16))
            y = b.maxpool(x, kernel=k, stride=k)
            g = b.build()
            return node_metrics(g, g[y])
        assert pool_metrics(4).flops == pool_metrics(2).flops

    def test_layernorm_params(self):
        b = GraphBuilder("g")
        x = b.input((768, 4, 4))
        x = b.tokenize(x)
        y = b.layernorm(x)
        g = b.build()
        assert node_metrics(g, g[y]).params == 2 * 768


class TestDot:
    def test_long_labels_truncated(self):
        b = GraphBuilder("g")
        x = b.input((3, 8, 8),
                    name="a_very_long_node_name_that_keeps_going_on")
        b.relu(x, name="another_extremely_long_name_for_a_relu_node")
        dot = graph_to_dot(b.build(), max_label_len=10)
        for line in dot.splitlines():
            if "label=" in line:
                label = line.split('label="')[1].split('"')[0]
                assert len(label) <= 20

    def test_input_node_white(self, small_cnn):
        dot = graph_to_dot(small_cnn)
        input_line = next(line for line in dot.splitlines()
                          if '"input_0"' in line and "label=" in line)
        assert "#ffffff" in input_line
