"""Determinism properties of the fleet serving simulator.

The contract under test (pinned here with hypothesis so it holds for
*every* seed/shape, not one golden scenario):

* **replay** — the same ``(trace, fleet config)`` produces a
  byte-identical canonical event log and exactly equal fleet joules on
  every run, including across ``n_jobs`` values (workers only pre-warm
  pure plan caches);
* **conservation** — every arrival is accounted exactly once:
  ``arrived == admitted + dropped_queue_full`` and
  ``admitted == completed + dropped_expired + dropped_unserviceable``,
  with or without injected hardware faults;
* **event-log shape** — sequence numbers are dense and times never run
  backwards, so logs diff cleanly line-by-line.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.hw.faults import FaultProfile
from repro.serving import (
    DeviceConfig,
    Fleet,
    FleetScheduler,
    SchedulerConfig,
    TRACE_KINDS,
    make_trace,
)
from tests.conftest import build_small_cnn

pytestmark = pytest.mark.serving

MODEL = "small_cnn"

_POLICIES = st.sampled_from(["fifo", "slo", "energy"])
_KINDS = st.sampled_from(list(TRACE_KINDS))
_SEEDS = st.integers(min_value=0, max_value=2**32 - 1)


def _build_fleet(governor: str = "powerlens", fleet_seed: int = 0,
                 faults: FaultProfile = None,
                 configs=None) -> Fleet:
    configs = configs or [DeviceConfig("tx2-0", "tx2"),
                          DeviceConfig("agx-1", "agx")]
    fleet = Fleet.build(configs, governor=governor,
                        fleet_seed=fleet_seed, faults=faults)
    fleet.add_graph(build_small_cnn(MODEL))
    return fleet


def _run(seed: int, kind: str = "poisson", policy: str = "fifo",
         governor: str = "powerlens", rate: float = 40.0,
         duration: float = 0.5, slo: float = math.inf,
         faults: FaultProfile = None, n_jobs: int = 1,
         queue_capacity: int = 64):
    """One fresh fleet + scheduler + trace, fully determined by args."""
    fleet = _build_fleet(governor=governor, fleet_seed=seed,
                         faults=faults)
    trace = make_trace(kind, rate_rps=rate, duration_s=duration,
                       models=[MODEL], seed=seed, slo_latency_s=slo)
    scheduler = FleetScheduler(fleet, SchedulerConfig(
        policy=policy, queue_capacity=queue_capacity))
    return scheduler.run(trace, n_jobs=n_jobs)


@settings(max_examples=12, deadline=None)
@given(seed=_SEEDS, kind=_KINDS, policy=_POLICIES)
def test_replay_is_byte_identical(seed, kind, policy):
    """Two runs of the same scenario: identical event-log bytes and
    exactly equal fleet energy."""
    first = _run(seed, kind=kind, policy=policy)
    second = _run(seed, kind=kind, policy=policy)
    assert first.event_log() == second.event_log()
    assert first.report.fleet_energy_j == second.report.fleet_energy_j
    assert first.report.to_dict() == second.report.to_dict()


@settings(max_examples=8, deadline=None)
@given(seed=_SEEDS, n_jobs=st.sampled_from([2, 4, 8]))
def test_n_jobs_never_changes_results(seed, n_jobs):
    """Plan-cache prewarm width is invisible in every output byte."""
    serial = _run(seed, n_jobs=1)
    pooled = _run(seed, n_jobs=n_jobs)
    assert serial.event_log() == pooled.event_log()
    assert serial.report.fleet_energy_j == pooled.report.fleet_energy_j


@settings(max_examples=10, deadline=None)
@given(seed=_SEEDS, kind=_KINDS, policy=_POLICIES,
       slo=st.sampled_from([math.inf, 0.5, 0.05]),
       queue_capacity=st.sampled_from([2, 8, 64]))
def test_request_conservation(seed, kind, policy, slo, queue_capacity):
    """No request is lost or double-counted, at any queue pressure."""
    result = _run(seed, kind=kind, policy=policy, slo=slo,
                  queue_capacity=queue_capacity)
    report = result.report
    assert report.conserved
    assert report.arrived == (report.admitted
                              + report.dropped_queue_full)
    assert report.admitted == (report.completed + report.dropped_expired
                               + report.dropped_unserviceable)
    # Outcomes and metrics agree with the report.
    assert len(result.outcomes) == report.completed
    counters = result.metrics
    assert counters.counter(
        "powerlens_serving_requests_total").value == report.arrived
    assert counters.counter(
        "powerlens_serving_completed_total").value == report.completed


@settings(max_examples=8, deadline=None)
@given(seed=_SEEDS,
       drop_rate=st.floats(min_value=0.0, max_value=0.3),
       telemetry_rate=st.floats(min_value=0.0, max_value=0.2))
def test_conservation_and_replay_under_faults(seed, drop_rate,
                                              telemetry_rate):
    """Injected switch/telemetry faults shift numbers, never accounting
    — and faulty runs replay byte-identically too."""
    faults = FaultProfile(seed=seed, switch_drop_rate=drop_rate,
                          switch_partial_rate=drop_rate / 2,
                          telemetry_drop_rate=telemetry_rate)
    first = _run(seed, policy="slo", slo=0.5, faults=faults)
    second = _run(seed, policy="slo", slo=0.5, faults=faults)
    assert first.report.conserved
    assert first.event_log() == second.event_log()
    assert first.report.fleet_energy_j == second.report.fleet_energy_j


@settings(max_examples=8, deadline=None)
@given(seed=_SEEDS, kind=_KINDS)
def test_event_log_is_dense_and_monotonic(seed, kind):
    result = _run(seed, kind=kind)
    events = result.events
    assert [e["seq"] for e in events] == list(range(len(events)))
    times = [e["t"] for e in events]
    assert all(a <= b for a, b in zip(times, times[1:]))
    # Every event kind the scheduler can emit is well-formed.
    assert {e["event"] for e in events} <= {
        "admit", "dispatch", "complete", "drop", "drain"}


def test_different_seeds_differ():
    """Sanity: the trace generators actually respond to the seed (a
    constant generator would pass every property above)."""
    assert _run(1).event_log() != _run(2).event_log()
