"""Zero-fault equivalence: a :class:`FaultProfile` with every rate at
zero must be indistinguishable from running with no profile at all —
byte-identical traces, telemetry and generated datasets.  This is the
property that lets the fault layer ship inside the production simulator
instead of behind a fork."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.datasets import DatasetGenerator
from repro.governors import FrequencyPlan, OndemandGovernor, PlanStep, \
    PresetGovernor
from repro.hw import InferenceJob, InferenceSimulator
from repro.hw.faults import FaultProfile
from repro.models.random_gen import RandomDNNConfig

from tests.conftest import build_small_cnn

pytestmark = pytest.mark.faults

#: Profiles whose rates are all zero; the non-behavioural fields (seed,
#: delay magnitude) are free — they must not matter.
zero_profiles = st.builds(
    FaultProfile,
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    switch_delay_s=st.floats(min_value=0.0, max_value=1.0,
                             allow_nan=False),
)


def _run(platform, governor, faults):
    graph = build_small_cnn()
    jobs = [InferenceJob(graph=graph, n_batches=2),
            InferenceJob(graph=graph, n_batches=1)]
    return InferenceSimulator(platform, faults=faults).run(jobs, governor)


def _assert_runs_identical(base, other):
    assert other.report == base.report
    assert other.trace.segments == base.trace.segments
    assert other.samples == base.samples
    assert other.switch_count == base.switch_count
    assert other.fault_stats is None and base.fault_stats is None


@settings(max_examples=15, deadline=None)
@given(profile=zero_profiles)
def test_simulator_identical_under_zero_profile(profile):
    assert profile.is_zero
    platform = __import__("repro.hw", fromlist=["jetson_tx2"]).jetson_tx2()
    plan = FrequencyPlan(graph_name="small_cnn",
                         steps=[PlanStep(0, 2), PlanStep(4, 5)])
    base = _run(platform, PresetGovernor([plan]), faults=None)
    under_profile = _run(platform, PresetGovernor([plan]), faults=profile)
    _assert_runs_identical(base, under_profile)


@settings(max_examples=10, deadline=None)
@given(profile=zero_profiles)
def test_reactive_governor_identical_under_zero_profile(profile):
    """The telemetry path (sampled windows driving ondemand) is also on
    the guarded code path."""
    platform = __import__("repro.hw", fromlist=["jetson_tx2"]).jetson_tx2()
    base = _run(platform, OndemandGovernor(), faults=None)
    under_profile = _run(platform, OndemandGovernor(), faults=profile)
    _assert_runs_identical(base, under_profile)


@settings(max_examples=3, deadline=None)
@given(profile=zero_profiles)
def test_datasets_identical_under_zero_profile(profile):
    from repro.hw import jetson_tx2
    platform = jetson_tx2()
    config = RandomDNNConfig(min_stages=1, max_stages=2, max_blocks_per_stage=2)
    base_gen = DatasetGenerator(platform, dnn_config=config, faults=None)
    fault_gen = DatasetGenerator(platform, dnn_config=config,
                                 faults=profile)
    a0, b0, s0 = base_gen.generate(3, seed=5)
    a1, b1, s1 = fault_gen.generate(3, seed=5)
    for x, y in ((a0.x_struct, a1.x_struct), (a0.x_stats, a1.x_stats),
                 (a0.y, a1.y), (b0.x, b1.x), (b0.y, b1.y)):
        assert x.dtype == y.dtype
        assert x.tobytes() == y.tobytes()
    assert s0.n_retries == s1.n_retries == 0
    assert s0.quarantined == s1.quarantined == []
