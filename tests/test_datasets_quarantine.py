"""Offline-pipeline resilience: transient labeling-worker failures are
retried with fresh spawned seeds, persistent failures are quarantined
(never aborting the run), and the resulting datasets and quarantine
bookkeeping are identical at any worker count."""

import numpy as np
import pytest

from repro.core.datasets import (
    MAX_TASK_RETRIES,
    DatasetGenerator,
    GenerationStats,
)
from repro.core.pipeline import TrainingSummary
from repro.hw import jetson_tx2
from repro.hw.faults import FaultProfile, worker_fault
from repro.models.random_gen import RandomDNNConfig

pytestmark = pytest.mark.faults

_SMALL = RandomDNNConfig(min_stages=1, max_stages=2, max_blocks_per_stage=2)


def _generator(profile):
    return DatasetGenerator(jetson_tx2(), dnn_config=_SMALL,
                            faults=profile)


def _expected_outcome(profile, n_networks):
    """Replay the pure worker-fault function: which tasks retry, which
    are quarantined."""
    retries = 0
    quarantined = []
    for index in range(n_networks):
        attempts = [worker_fault(profile, index, attempt)
                    for attempt in range(MAX_TASK_RETRIES + 1)]
        failed_prefix = 0
        for fault in attempts:
            if not fault:
                break
            failed_prefix += 1
        retries += min(failed_prefix, MAX_TASK_RETRIES)
        if failed_prefix == MAX_TASK_RETRIES + 1:
            quarantined.append(index)
    return retries, quarantined


def test_transient_failures_retry_and_complete():
    """A flaky worker pool must not abort generation, and the stats
    must match a pure replay of the deterministic fault pattern."""
    profile = FaultProfile(seed=3, worker_failure_rate=0.5)
    n = 8
    expected_retries, expected_quarantined = _expected_outcome(profile, n)
    # The chosen seed exercises both outcomes at once.
    assert expected_retries > 0
    dataset_a, dataset_b, stats = _generator(profile).generate(n, seed=9)
    assert stats.n_retries == expected_retries
    assert stats.quarantined == expected_quarantined
    assert stats.n_networks == n - len(expected_quarantined)
    assert len(dataset_a) == stats.n_networks


def test_all_quarantined_raises():
    profile = FaultProfile(worker_failure_rate=1.0)
    with pytest.raises(RuntimeError, match="quarantin"):
        _generator(profile).generate(3, seed=0)


def test_quarantine_identical_serial_vs_pooled():
    """Process-pool scheduling cannot change which tasks fail, retry or
    land in quarantine — datasets stay byte-identical at any n_jobs."""
    profile = FaultProfile(seed=7, worker_failure_rate=0.6)
    n = 6
    serial = _generator(profile).generate(n, seed=4, n_jobs=1)
    pooled = _generator(profile).generate(n, seed=4, n_jobs=2)
    a0, b0, s0 = serial
    a1, b1, s1 = pooled
    assert s0.n_retries == s1.n_retries
    assert s0.quarantined == s1.quarantined
    for x, y in ((a0.x_struct, a1.x_struct), (a0.x_stats, a1.x_stats),
                 (a0.y, a1.y), (b0.x, b1.x), (b0.y, b1.y)):
        assert x.tobytes() == y.tobytes()


def test_quarantined_networks_never_reach_datasets():
    profile = FaultProfile(seed=3, worker_failure_rate=0.5)
    n = 8
    _, quarantined = _expected_outcome(profile, n)
    assert quarantined  # seed chosen so at least one network is dropped
    clean_a, clean_b, _ = _generator(None).generate(n, seed=9)
    faulty_a, faulty_b, stats = _generator(profile).generate(n, seed=9)
    assert stats.quarantined == quarantined
    assert len(faulty_a) == n - len(quarantined)
    # Networks the fault layer never touched keep their clean rows —
    # a neighbour's retry or quarantine cannot perturb their data.
    # (Retried networks are respawned from a fresh seed, so their rows
    # legitimately differ from the clean run.)
    survivors = [i for i in range(n) if i not in quarantined]
    untouched = [i for i in range(n)
                 if not worker_fault(profile, i, 0)]
    assert untouched
    for index in untouched:
        row = survivors.index(index)
        assert faulty_a.x_struct[row].tobytes() == \
            clean_a.x_struct[index].tobytes()
        assert faulty_a.y[row] == clean_a.y[index]


def test_quarantine_surfaces_in_training_summary(fitted_lens):
    """The fit summary line carries quarantine/retry counts whenever
    they are non-zero (the CLI prints this summary)."""
    healthy = fitted_lens.training_summary
    assert "quarantined" not in healthy.format()
    degraded = TrainingSummary(
        hyperparam_report=healthy.hyperparam_report,
        decision_report=healthy.decision_report,
        generation=GenerationStats(n_networks=23, n_blocks=50,
                                   n_retries=4, quarantined=[2, 19]),
    )
    assert "[2 quarantined, 4 retries]" in degraded.format()
