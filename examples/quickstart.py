#!/usr/bin/env python
"""Quickstart: train PowerLens for a platform and analyze one network.

Walks the full Figure-2 workflow on a simulated Jetson TX2:

1. fit the framework (dataset generation + both prediction models),
2. analyze ResNet-152 into a power view with per-block target levels,
3. execute the plan on the platform simulator against the built-in
   ondemand governor and compare energy efficiency.

Run:  python examples/quickstart.py
"""

from repro.core import PowerLens, PowerLensConfig
from repro.governors import OndemandGovernor
from repro.hw import InferenceJob, InferenceSimulator, jetson_tx2
from repro.models import build_model


def main() -> None:
    platform = jetson_tx2()
    print(f"platform: {platform.name} "
          f"({platform.n_levels} GPU levels, "
          f"{platform.f_min / 1e6:.0f}-{platform.f_max / 1e6:.0f} MHz)")

    # ------------------------------------------------------------------
    # 1. Offline training (scaled-down corpus; the paper uses 8000).
    # ------------------------------------------------------------------
    lens = PowerLens(platform, PowerLensConfig(n_networks=60, seed=0))
    print("\nfitting PowerLens (dataset generation + model training)...")
    summary = lens.fit()
    print(summary.format())

    # ------------------------------------------------------------------
    # 2. Analyze a network into a power view + frequency plan.
    # ------------------------------------------------------------------
    graph = build_model("resnet152")
    plan = lens.analyze(graph)
    print(f"\n{plan.summary()}")

    # ------------------------------------------------------------------
    # 3. Execute against the built-in governor.
    # ------------------------------------------------------------------
    job = InferenceJob(graph=graph, batch_size=16, n_batches=10)
    governor = lens.governor([graph])

    sim = InferenceSimulator(platform, keep_trace=False)
    powerlens_run = sim.run([job], governor)
    sim = InferenceSimulator(platform, keep_trace=False)
    bim_run = sim.run([job], OndemandGovernor())

    ee_pl = powerlens_run.report.energy_efficiency
    ee_bim = bim_run.report.energy_efficiency
    print(f"\nenergy efficiency (images/J):")
    print(f"  built-in governor (BiM): {ee_bim:8.4f}  "
          f"({bim_run.report.total_energy:7.1f} J, "
          f"{bim_run.report.total_time:6.2f} s)")
    print(f"  PowerLens:               {ee_pl:8.4f}  "
          f"({powerlens_run.report.total_energy:7.1f} J, "
          f"{powerlens_run.report.total_time:6.2f} s)")
    print(f"  improvement:             {100 * (ee_pl / ee_bim - 1):+.1f}%")


if __name__ == "__main__":
    main()
