#!/usr/bin/env python
"""Power-view explorer: see what Algorithm 1 does to a network.

For a chosen model this example shows the whole clustering story:
depthwise feature extraction, the blended Mahalanobis/spacing distance,
how each (epsilon, minPts) scheme partitions the operators, the
exhaustive-sweep optimal frequency of every resulting block, and a DOT
rendering of the winning power view you can pipe into Graphviz.

Run:  python examples/power_view_explorer.py [model_name]
"""

import sys

from repro.core.clustering import cluster_power_blocks
from repro.core.features import DepthwiseFeatureExtractor
from repro.core.labeling import best_scheme_for_graph, plan_levels_for_blocks
from repro.core.power_view import PowerView
from repro.core.schemes import default_scheme_grid
from repro.hw import jetson_tx2
from repro.hw.analytic import AnalyticEvaluator
from repro.models import build_model


def main() -> None:
    model_name = sys.argv[1] if len(sys.argv) > 1 else "vgg19"
    graph = build_model(model_name)
    platform = jetson_tx2()
    evaluator = AnalyticEvaluator(platform)

    features = DepthwiseFeatureExtractor().extract_scaled(graph)
    print(f"{graph.name}: {features.shape[0]} operators, "
          f"{features.shape[1]} depthwise features each")

    schemes = default_scheme_grid()
    print(f"\n{'scheme':<24s} {'blocks':>6s} {'per-block levels'}")
    best_idx, best_blocks, qualities = best_scheme_for_graph(
        evaluator, graph, features, schemes)
    for i, scheme in enumerate(schemes):
        blocks = cluster_power_blocks(features, scheme.eps,
                                      scheme.min_pts)
        levels = plan_levels_for_blocks(evaluator, graph, blocks)
        marker = " <- selected" if i == best_idx else ""
        print(f"{scheme.label():<24s} {len(blocks):>6d} "
              f"{levels}{marker}")

    view = PowerView.from_blocks(graph, best_blocks)
    levels = plan_levels_for_blocks(evaluator, graph, best_blocks)
    print(f"\n{view.summary()}")
    print("per-block target levels:", levels)

    dot_path = f"/tmp/{graph.name}_power_view.dot"
    with open(dot_path, "w") as fh:
        fh.write(view.to_dot())
    print(f"\npower view DOT written to {dot_path} "
          f"(render: dot -Tpng {dot_path} -o view.png)")


if __name__ == "__main__":
    main()
