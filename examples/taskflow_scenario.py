#!/usr/bin/env python
"""Task-flow scenario (the Figure-5 workload at example scale).

Assembles a random flow of inference tasks from the Table-1 model suite
and runs it under all four methods — BiM (ondemand), FPG-G, FPG-C+G and
PowerLens — reporting total energy, time and energy efficiency, plus the
frequency ping-pong statistics that motivate the paper's Figure 1.

Run:  python examples/taskflow_scenario.py
"""

from repro.core import PowerLens, PowerLensConfig
from repro.governors import OndemandGovernor, fpg_cg, fpg_g
from repro.hw import InferenceSimulator, jetson_agx_xavier
from repro.models import build_model
from repro.workloads import TaskFlowConfig, make_taskflow


def main() -> None:
    platform = jetson_agx_xavier()
    config = TaskFlowConfig(
        n_tasks=12,
        images_per_task=50,
        batch_size=10,
        model_names=("alexnet", "resnet34", "resnet152", "vgg19",
                     "vit_base_32"),
        seed=1,
    )
    graphs = {name: build_model(name) for name in config.model_names}
    jobs = make_taskflow(config, graphs=graphs)
    images = sum(job.images for job in jobs)
    print(f"task flow: {config.n_tasks} tasks, {images} images, "
          f"models={list(config.model_names)}")

    print("\nfitting PowerLens for", platform.name, "...")
    lens = PowerLens(platform, PowerLensConfig(n_networks=60, seed=0))
    lens.fit()
    powerlens = lens.governor(list(graphs.values()))

    print(f"\n{'method':<12s} {'energy(J)':>10s} {'time(s)':>9s} "
          f"{'EE(img/J)':>10s} {'switches':>9s} {'reversals':>10s}")
    baseline_ee = None
    for governor in (OndemandGovernor(), fpg_g(), fpg_cg(), powerlens):
        sim = InferenceSimulator(platform, noise_std=0.02,
                                 keep_trace=False, keep_samples=False)
        run = sim.run(jobs, governor)
        r = run.report
        if baseline_ee is None:
            baseline_ee = r.energy_efficiency
        rel = 100 * (r.energy_efficiency / baseline_ee - 1)
        print(f"{governor.name:<12s} {r.total_energy:>10.1f} "
              f"{r.total_time:>9.2f} {r.energy_efficiency:>10.4f} "
              f"{run.switch_count:>9d} {run.reversal_count:>10d}"
              f"   ({rel:+.1f}% EE vs BiM)")


if __name__ == "__main__":
    main()
