#!/usr/bin/env python
"""Tour of the future-work extensions (paper section 5).

1. **CPU DVFS** — PowerLens-C+G plans the host cluster's frequency for
   the preprocessing phases alongside the GPU power blocks.
2. **Batch-size co-optimization** — pick the (batch, frequency) pair
   with the best energy per image under a latency cap.
3. **Thermal awareness** — on a thermally constrained board the
   built-in governor hits the throttle point; PowerLens's lower preset
   frequencies keep the die cool and the throttle disengaged.
4. **Platform calibration** — recover a board's power coefficients from
   measured samples (the road from simulator to silicon).

Run:  python examples/extensions_tour.py
"""

from repro.core import PowerLens, PowerLensConfig
from repro.extensions import best_batch_size, fit_power_model
from repro.extensions.calibrate import synthesize_samples
from repro.extensions.cpu_dvfs import powerlens_cg_governor
from repro.governors import StaticGovernor
from repro.hw import InferenceJob, InferenceSimulator, jetson_tx2
from repro.hw.thermal import ThermalConfig
from repro.models import build_model


def main() -> None:
    platform = jetson_tx2()
    graph = build_model("resnet34")

    print("fitting PowerLens ...")
    lens = PowerLens(platform, PowerLensConfig(n_networks=40, seed=0))
    lens.fit()

    # ------------------------------------------------------------------
    # 1. CPU DVFS (PowerLens-C+G)
    # ------------------------------------------------------------------
    cpu_work = 2.4e8
    job = InferenceJob(graph=graph, batch_size=16, n_batches=6,
                       cpu_work_per_image=cpu_work)
    plain = lens.governor([graph])
    cg = powerlens_cg_governor(lens, [graph], cpu_work_per_image=cpu_work)
    r_plain = InferenceSimulator(platform, keep_trace=False).run(
        [job], plain)
    r_cg = InferenceSimulator(platform, keep_trace=False).run([job], cg)
    print("\n1. CPU DVFS extension")
    print(f"   PowerLens      EE {r_plain.report.energy_efficiency:.4f} "
          f"(cpu energy {r_plain.trace.cpu_energy:.1f} J)")
    print(f"   PowerLens-C+G  EE {r_cg.report.energy_efficiency:.4f} "
          f"(cpu energy {r_cg.trace.cpu_energy:.1f} J)")

    # ------------------------------------------------------------------
    # 2. Batch-size co-optimization
    # ------------------------------------------------------------------
    print("\n2. Batch-size co-optimization (latency cap 1.0 s/batch)")
    choice = best_batch_size(platform, graph, max_batch_latency=1.0)
    print(f"   best batch {choice.batch_size} at level {choice.level}: "
          f"{choice.energy_per_image * 1000:.1f} mJ/image, "
          f"{choice.latency_per_image * 1000:.2f} ms/image")

    # ------------------------------------------------------------------
    # 3. Thermal awareness
    # ------------------------------------------------------------------
    print("\n3. Thermal behaviour on a passively cooled variant")
    thermal = ThermalConfig(r_th=6.0, c_th=0.6, t_throttle=62.0,
                            t_release=54.0, throttle_level=3)
    hot_job = InferenceJob(graph=graph, batch_size=16, n_batches=8,
                           cpu_work_per_image=0.0)
    r_max = InferenceSimulator(platform, thermal=thermal,
                               keep_trace=False).run(
        [hot_job], StaticGovernor())
    r_pl = InferenceSimulator(platform, thermal=thermal,
                              keep_trace=False).run(
        [hot_job], lens.governor([graph]))
    print(f"   max frequency: peak {r_max.peak_temperature:.1f} C, "
          f"throttled {r_max.throttle_time:.2f} s")
    print(f"   PowerLens:     peak {r_pl.peak_temperature:.1f} C, "
          f"throttled {r_pl.throttle_time:.2f} s")

    # ------------------------------------------------------------------
    # 4. Platform calibration
    # ------------------------------------------------------------------
    print("\n4. Power-model calibration from measured samples")
    samples = synthesize_samples(platform, n=120, noise_w=0.15, seed=2)
    fit = fit_power_model(platform, samples)
    print(f"   leakage  {fit.leak_w_per_v:.3f} W/V "
          f"(truth {platform.leak_w_per_v:.3f})")
    print(f"   c_eff    {fit.c_eff:.2e} (truth {platform.c_eff:.2e})")
    print(f"   stall    {fit.stall_power_fraction:.3f} "
          f"(truth {platform.stall_power_fraction:.3f})")
    print(f"   rms err  {fit.rms_error_w:.3f} W over {len(samples)} "
          f"samples")


if __name__ == "__main__":
    main()
