#!/usr/bin/env python
"""Analysis tour: *why* PowerLens's decisions are what they are.

Renders, for a chosen model on the TX2:

1. the roofline report — which operators are memory-bound at the top
   clock and where each category's crossover sits;
2. the EE-versus-level curve with its interior optimum (the headroom the
   built-in race-to-max governor leaves on the table);
3. per-block curves showing why the conv trunk and the classifier head
   want different frequencies;
4. ping-pong/lag diagnostics of the ondemand governor on the same
   workload.

Run:  python examples/analysis_tour.py [model_name]
"""

import sys

from repro.analysis import (
    analyze_trace,
    level_curve,
    render_curve,
    roofline_report,
)
from repro.governors import OndemandGovernor
from repro.hw import InferenceJob, InferenceSimulator, jetson_tx2
from repro.models import build_model


def main() -> None:
    model_name = sys.argv[1] if len(sys.argv) > 1 else "vgg19"
    platform = jetson_tx2()
    graph = build_model(model_name)

    # 1. roofline
    report = roofline_report(platform, graph, batch_size=16)
    print(report.format_table(top_n=8))
    shares = report.time_share_by_category()
    print("time share by category:",
          {k: f"{v:.1%}" for k, v in sorted(shares.items(),
                                            key=lambda kv: -kv[1])})

    # 2. whole-graph EE curve
    curve = level_curve(platform, graph, batch_size=16)
    print()
    print(render_curve(curve, "ee"))
    print(f"headroom over max frequency: {curve.headroom():.1%}")

    # 3. per-block curves (first vs last eighth of the network)
    n = len(graph.compute_nodes())
    trunk = level_curve(platform, graph, batch_size=16,
                        op_indices=range(n // 8))
    head = level_curve(platform, graph, batch_size=16,
                       op_indices=range(7 * n // 8, n))
    print(f"\nfirst eighth of the network: optimal level "
          f"{trunk.optimal_level(latency_slack=0.25)}")
    print(f"last eighth of the network:  optimal level "
          f"{head.optimal_level(latency_slack=0.25)}")

    # 4. reactive-governor diagnostics
    sim = InferenceSimulator(platform, sample_period=0.01)
    job = InferenceJob(graph=graph, batch_size=16, n_batches=3,
                       cpu_work_per_image=2e8)
    run = sim.run([job], OndemandGovernor())
    diagnostics = analyze_trace(run.trace, platform.n_levels,
                                run.switch_count, run.reversal_count)
    print("\nondemand governor on the same workload:")
    print(diagnostics.format_table())


if __name__ == "__main__":
    main()
