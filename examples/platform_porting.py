#!/usr/bin/env python
"""Porting PowerLens to a new hardware platform — no human in the loop.

Section 2.3.1 of the paper: "transferring it to a new hardware platform
simply involves the automated generation of datasets and training."
This example defines a board the framework has never seen (an Orin-class
device with its own frequency ladder, voltage curve and bandwidth),
fits PowerLens on it from scratch, and verifies the deployed plans beat
the board's built-in governor.

Run:  python examples/platform_porting.py
"""

from repro.core import PowerLens, PowerLensConfig
from repro.governors import OndemandGovernor
from repro.hw import CpuSpec, InferenceJob, InferenceSimulator, PlatformSpec
from repro.models import build_model

MHZ = 1e6


def make_orin_like() -> PlatformSpec:
    """A fictional-but-plausible next-generation board: wider ladder,
    more compute, faster memory."""
    return PlatformSpec(
        name="orin_like",
        gpu_freq_levels=tuple(f * MHZ for f in (
            114.75, 306.0, 408.0, 510.0, 612.0, 714.0, 816.0, 918.0,
            1020.0, 1122.0, 1224.0, 1300.5, 1377.0, 1453.5, 1530.0)),
        cpu=CpuSpec(freq_levels=tuple(f * MHZ for f in (
            499.2, 729.6, 1190.4, 1651.2, 2035.2, 2201.6))),
        v_min=0.58,
        v_max=1.28,
        gamma=2.8,
        flops_per_cycle=2048.0,
        mem_bandwidth=204.8e9,
        c_eff=9.0e-9,
        dram_energy_per_byte=3.0e-11,
        leak_w_per_v=2.0,
        board_power=2.2,
    )


def main() -> None:
    platform = make_orin_like()
    print(f"new platform: {platform.name} "
          f"({platform.n_levels} levels, "
          f"{platform.f_min / 1e6:.0f}-{platform.f_max / 1e6:.0f} MHz)")

    # The entire port: generate datasets on the new board, train the two
    # prediction models. No thresholds to recalibrate by hand.
    lens = PowerLens(platform, PowerLensConfig(n_networks=60, seed=0))
    print("\nautomated port: dataset generation + training ...")
    summary = lens.fit()
    print(summary.format())

    print(f"\n{'model':<16s} {'blocks':>6s} {'levels':<22s} "
          f"{'EE vs BiM':>10s}")
    for name in ("googlenet", "resnet152", "vit_base_16"):
        graph = build_model(name)
        plan = lens.analyze(graph)
        job = InferenceJob(graph=graph, batch_size=16, n_batches=6)
        sim = InferenceSimulator(platform, keep_trace=False)
        ee_pl = sim.run([job], lens.governor([graph])) \
            .report.energy_efficiency
        sim = InferenceSimulator(platform, keep_trace=False)
        ee_bim = sim.run([job], OndemandGovernor()) \
            .report.energy_efficiency
        print(f"{name:<16s} {plan.n_blocks:>6d} "
              f"{str(plan.levels):<22s} "
              f"{100 * (ee_pl / ee_bim - 1):>+9.1f}%")


if __name__ == "__main__":
    main()
